// Unit tests for src/util: RNG determinism and distribution sanity,
// number formatting, running statistics, backoff, barrier, the livelock
// watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "util/backoff.hpp"
#include "util/barrier.hpp"
#include "util/cycles.hpp"
#include "util/format.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/stop_token.hpp"
#include "util/watchdog.hpp"

namespace votm {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(99);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Xoshiro256 rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.chance(10, 100);
  EXPECT_NEAR(hits, 10000, 600);
}

TEST(Rng, Uniform01InUnitInterval) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(SplitMix, ExpandsSeedsDistinctly) {
  SplitMix64 sm(1);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Format, HumanCountMatchesPaperStyle) {
  EXPECT_EQ(human_count(3'200'000.0), "3.20m");
  EXPECT_EQ(human_count(7'010'000.0), "7.01m");
  EXPECT_EQ(human_count(145'000'000'000.0), "145G");
  EXPECT_EQ(human_count(49'800'000'000'000.0), "49.8T");
  EXPECT_EQ(human_count(178.0), "178");
  EXPECT_EQ(human_count(25'200.0), "25.2k");
  EXPECT_EQ(human_count(0.0), "0");
}

TEST(Format, DeltaStyle) {
  EXPECT_EQ(format_delta(std::nan("")), "N/A");
  EXPECT_EQ(format_delta(0.49), "0.49");
  EXPECT_EQ(format_delta(30.7), "30.70");
  EXPECT_EQ(format_delta(0.003), "0.003");
}

TEST(Stats, WelfordMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.5);
}

TEST(Cycles, Monotonic) {
  const auto a = rdcycles();
  const auto b = rdcycles();
  EXPECT_LE(a, b);
}

TEST(WallTimerTest, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.seconds(), 0.015);
}

TEST(BackoffTest, PoliciesDoNotHang) {
  for (auto policy : {BackoffPolicy::kNone, BackoffPolicy::kYield,
                      BackoffPolicy::kExponential}) {
    Backoff b(policy);
    for (int i = 0; i < 50; ++i) b.pause();
    b.reset();
    b.pause();
  }
}

TEST(BackoffTest, ExponentialLevelIsClampedPastWordWidth) {
  // Regression: 100+ consecutive pauses used to shift 1ULL past 63 bits
  // (UB, and on the escape the window wrapped to tiny values). The level
  // must clamp so deep retry streaks keep the capped maximum window.
  Backoff b(BackoffPolicy::kExponential);
  for (int i = 0; i < 200; ++i) b.pause();
  b.reset();
}

TEST(BackoffTest, AgedPauseBoundedAtAllWeights) {
  Backoff b(BackoffPolicy::kNone);  // aging applies regardless of policy
  // Degenerate weights (0, tiny, huge) and deep levels must all clamp to
  // the bounded window rather than hanging or shifting past the word.
  for (const std::uint64_t weight :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{1} << 40,
        ~std::uint64_t{0}}) {
    for (unsigned level : {0u, 1u, 8u, 200u}) {
      b.pause_aged(weight, level);
    }
  }
}

TEST(BarrierTest, ReleasesAllParties) {
  constexpr unsigned kThreads = 8;
  StartBarrier barrier(kThreads);
  std::atomic<int> before{0}, after{0};
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      before.fetch_add(1);
      barrier.arrive_and_wait();
      after.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(before.load(), static_cast<int>(kThreads));
  EXPECT_EQ(after.load(), static_cast<int>(kThreads));
}

TEST(BarrierTest, Reusable) {
  StartBarrier barrier(2);
  std::thread t([&] {
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();
  });
  barrier.arrive_and_wait();
  barrier.arrive_and_wait();
  t.join();
}

TEST(BarrierTest, MultiPhaseReuseElectsOneCoordinatorPerPhase) {
  // Back-to-back generations with no pause between them: a thread
  // descheduled across the wake-up must not be trapped by the next phase
  // re-arming the barrier, and exactly one arriver per phase gets `true`.
  constexpr unsigned kThreads = 4;
  constexpr int kPhases = 200;
  StartBarrier barrier(kThreads);
  std::atomic<int> coordinators{0};
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        if (barrier.arrive_and_wait()) coordinators.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(coordinators.load(), kPhases);
  EXPECT_EQ(barrier.generation(), static_cast<std::size_t>(kPhases));
}

TEST(BarrierTest, GenerationCountsCompletedPhases) {
  StartBarrier barrier(1);  // degenerate: every arrival completes a phase
  EXPECT_EQ(barrier.generation(), 0u);
  EXPECT_TRUE(barrier.arrive_and_wait());
  EXPECT_TRUE(barrier.arrive_and_wait());
  EXPECT_EQ(barrier.generation(), 2u);
  EXPECT_EQ(barrier.parties(), 1u);
}

TEST(HistogramTest, BucketBoundaries) {
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(4), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(Log2Histogram::bucket_floor(10), 1024u);
}

TEST(HistogramTest, RecordAndTotal) {
  Log2Histogram h;
  for (std::uint64_t v : {1ull, 2ull, 3ull, 1000ull, 1000000ull}) h.record(v);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 1u);  // value 1
  EXPECT_EQ(h.count(1), 2u);  // values 2, 3
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

TEST(HistogramTest, QuantileApproximation) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.record(8);     // bucket floor 8
  for (int i = 0; i < 10; ++i) h.record(4096);  // bucket floor 4096
  EXPECT_EQ(h.quantile(0.5), 8u);
  EXPECT_EQ(h.quantile(0.99), 4096u);
  Log2Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);
}

TEST(HistogramTest, ConcurrentRecordingLosesNothing) {
  Log2Histogram h;
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) h.record((t + 1) * 100);
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(h.total(), kThreads * static_cast<std::uint64_t>(kPerThread));
}

TEST(HistogramTest, SummaryListsNonEmptyBuckets) {
  Log2Histogram h;
  EXPECT_EQ(h.summary(), "(empty)");
  h.record(5);
  h.record(5);
  EXPECT_EQ(h.summary(), "4:2");
}

TEST(WatchdogTest, RaisesAfterConsecutiveZeroCommitWindows) {
  // Synthetic livelock: aborts climb every sample, commits never move.
  std::atomic<std::uint64_t> aborts{0};
  std::atomic<std::uint64_t> alarm_seen{0};
  WatchdogDiagnostic last;
  std::mutex last_mu;
  LivelockWatchdog::Options opt;
  opt.period = std::chrono::milliseconds(5);
  opt.strikes = 3;
  LivelockWatchdog dog(
      [&] {
        WatchdogSample s;
        s.commits = 7;  // frozen
        s.aborts = aborts.fetch_add(10, std::memory_order_relaxed) + 10;
        s.consecutive_abort_hwm = 42;
        s.quota = 4;
        s.admitted = 4;
        return s;
      },
      [&](const WatchdogDiagnostic& d) {
        std::lock_guard<std::mutex> lk(last_mu);
        last = d;
        alarm_seen.fetch_add(1, std::memory_order_release);
      },
      opt);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (alarm_seen.load(std::memory_order_acquire) == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  dog.stop();
  ASSERT_GE(dog.alarms_raised(), 1u) << "no alarm within 10s of livelock";
  std::lock_guard<std::mutex> lk(last_mu);
  EXPECT_EQ(last.window_commits, 0u);
  EXPECT_GE(last.window_aborts, 10u);
  EXPECT_EQ(last.consecutive_abort_hwm, 42u);
  EXPECT_EQ(last.quota, 4u);
  EXPECT_EQ(last.consecutive_bad_windows, 3u);
  EXPECT_NE(last.to_string().find("livelock watchdog"), std::string::npos);
}

TEST(WatchdogTest, StaysQuietUnderProgressAndIdleness) {
  // Progress (commits move) and idleness (nothing moves) are both healthy;
  // a strike needs abort traffic WITH zero commits.
  std::atomic<std::uint64_t> ticks{0};
  LivelockWatchdog::Options opt;
  opt.period = std::chrono::milliseconds(2);
  opt.strikes = 2;
  LivelockWatchdog dog(
      [&] {
        const std::uint64_t n = ticks.fetch_add(1, std::memory_order_relaxed);
        WatchdogSample s;
        // First half: commits and aborts both advance. Second half: idle.
        s.commits = n < 10 ? n : 10;
        s.aborts = n < 10 ? n * 5 : 50;
        return s;
      },
      [&](const WatchdogDiagnostic&) {}, opt);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  dog.stop();
  EXPECT_EQ(dog.alarms_raised(), 0u);
}

TEST(StopTokenTest, ThrowsWhenStopped) {
  StopToken token;
  EXPECT_NO_THROW(token.throw_if_stopped());
  token.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_THROW(token.throw_if_stopped(), StopRequested);
  token.reset();
  EXPECT_FALSE(token.stop_requested());
}

}  // namespace
}  // namespace votm
