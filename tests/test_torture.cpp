// Chaos torture smoke (ctest -L torture-smoke).
//
// A short in-process shake of everything this PR's robustness layer
// claims: real threads hammer one view per phase with a random mix of
// plain increments, transactional alloc+free churn (limbo pressure) and
// randomly-budgeted run_for calls (deadlines expiring at entry, mid-body
// and never), while a mutator thread changes the admission quota mid-run
// and — when the fault injector is compiled in — seeded windows of
// kCmWaitTimeout, kCmWaitLostWakeup and kLimboWatermark fire underneath.
// Each phase pins a different engine x clock-policy x contention-mode x
// mvcc corner.
//
// The assertions are the overload contract, not a throughput bar:
//   * no wedge — every thread joins (a hang fails via the ctest timeout),
//     with a LivelockWatchdog sampling View::health() throughout;
//   * no leak — after one forced reclaim the limbo list is empty,
//     retired == reclaimed, and the arena is back at its baseline;
//   * conservation — the view's commit/abort totals match the observed
//     body invocations, with slack bounded by the deadline outcomes
//     (a begin-time expiry aborts before the body ever runs);
//   * clean shutdown — admission ledger drained, serial token free.
// The hours-long configurable version of this harness is bench/torture;
// this is its seconds-long ctest tier (also run under ASan/TSan smoke).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "check/fault.hpp"
#include "core/access.hpp"
#include "core/view.hpp"
#include "stm/abort.hpp"
#include "stm/factory.hpp"
#include "util/deadline.hpp"
#include "util/rng.hpp"
#include "util/watchdog.hpp"

namespace votm {
namespace {

using namespace std::chrono_literals;

struct TorturePhase {
  stm::Algo algo;
  stm::ClockPolicy clock;
  stm::ContentionMode mode;
  bool mvcc;
};

constexpr TorturePhase kPhases[] = {
    {stm::Algo::kNOrec, stm::ClockPolicy::kGv1,
     stm::ContentionMode::kAbortRetry, false},
    {stm::Algo::kOrecEagerRedo, stm::ClockPolicy::kGv4,
     stm::ContentionMode::kWaitTimeout, false},
    {stm::Algo::kOrecLazy, stm::ClockPolicy::kGv6,
     stm::ContentionMode::kWaitTimeout, true},
    {stm::Algo::kOrecEagerUndo, stm::ClockPolicy::kGv5,
     stm::ContentionMode::kWaitTimeout, false},
    {stm::Algo::kTml, stm::ClockPolicy::kGv1,
     stm::ContentionMode::kAbortRetry, false},
};

void spin_for(std::chrono::nanoseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

void run_phase(const TorturePhase& p, unsigned phase_index,
               std::chrono::milliseconds duration) {
  constexpr unsigned kWorkers = 4;
  core::ViewConfig vc;
  vc.algo = p.algo;
  vc.max_threads = kWorkers;
  vc.rac = core::RacMode::kFixed;
  vc.fixed_quota = kWorkers;
  vc.initial_bytes = 1 << 18;
  vc.engine.clock_policy = p.clock;
  vc.engine.contention_mode = p.mode;
  vc.engine.mvcc = p.mvcc;
  vc.engine.cm_wait_spin_limit = 256;  // short waits: more timeout paths
  vc.reclaim_threshold = 8;
  vc.limbo_soft_watermark = 24;
  vc.limbo_hard_watermark = 48;
  vc.escalation.enabled = true;
  vc.escalation.aging_after = 2;
  vc.escalation.serial_after = 6;
  core::View view(vc);

  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { core::vwrite<stm::Word>(cell, 0); });
  const std::size_t baseline = view.arena().allocated();

#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS
  // Seeded chaos: windows of forced wait timeouts, blind waits and
  // spurious hard-watermark trips. No vacuity assertions here — phases on
  // non-orec engines never reach the wait sites, by design.
  check::FaultInjector& inj = check::FaultInjector::instance();
  const std::uint64_t fault_seed = 0x7042u + phase_index;
  inj.arm_seeded(check::FaultSite::kCmWaitTimeout, fault_seed,
                 /*max_skip=*/32, /*fire=*/8);
  inj.arm_seeded(check::FaultSite::kCmWaitLostWakeup, fault_seed ^ 0xFF,
                 /*max_skip=*/64, /*fire=*/8);
  inj.arm_seeded(check::FaultSite::kLimboWatermark, fault_seed ^ 0xF0F0,
                 /*max_skip=*/64, /*fire=*/4);
#endif

  std::atomic<std::uint64_t> body_attempts{0};
  std::atomic<std::uint64_t> commits_observed{0};
  std::atomic<std::uint64_t> increments_committed{0};
  std::atomic<std::uint64_t> deadline_exceeded{0};
  std::atomic<std::uint64_t> watchdog_alarms{0};

  // The watchdog samples health() for the whole phase: its job here is to
  // prove the sampler stays coherent under fire, not to alarm (transient
  // zero-commit windows under quota churn are legal).
  LivelockWatchdog dog([&] { return view.health(); },
                       [&](const WatchdogDiagnostic&) {
                         watchdog_alarms.fetch_add(1,
                                                   std::memory_order_relaxed);
                       });

  const auto stop_at = std::chrono::steady_clock::now() + duration;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kWorkers; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256 rng(0x9E3779B97F4A7C15ULL * (phase_index + 1) + t);
      while (std::chrono::steady_clock::now() < stop_at) {
        const std::uint64_t r = rng.below(100);
        if (r < 55) {
          view.execute([&] {
            body_attempts.fetch_add(1, std::memory_order_relaxed);
            core::vadd<stm::Word>(cell, 1);
          });
          commits_observed.fetch_add(1, std::memory_order_relaxed);
          increments_committed.fetch_add(1, std::memory_order_relaxed);
        } else if (r < 85) {
          // Limbo pressure: a committed transactional free per round.
          view.execute([&] {
            body_attempts.fetch_add(1, std::memory_order_relaxed);
            auto* p =
                static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
            core::vwrite<stm::Word>(p, r);
            view.free(p);
          });
          commits_observed.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Random budget from "already expired" to "comfortably enough";
          // the body sometimes burns time so every expiry point is hit.
          const std::chrono::nanoseconds budget{rng.below(300'000)};
          const std::chrono::nanoseconds burn{rng.below(200'000)};
          try {
            view.run_for(budget, [&] {
              body_attempts.fetch_add(1, std::memory_order_relaxed);
              if (burn.count() != 0) spin_for(burn);
              core::vadd<stm::Word>(cell, 1);
            });
            commits_observed.fetch_add(1, std::memory_order_relaxed);
            increments_committed.fetch_add(1, std::memory_order_relaxed);
          } catch (const stm::DeadlineExceeded&) {
            deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  // Mid-run quota changes, including drops into lock mode and back.
  std::thread mutator([&] {
    Xoshiro256 rng(0xC0FFEE ^ phase_index);
    while (std::chrono::steady_clock::now() < stop_at) {
      view.set_quota(1 + static_cast<unsigned>(rng.below(kWorkers)));
      std::this_thread::sleep_for(5ms);
    }
    view.set_quota(kWorkers);
  });

  for (auto& w : workers) w.join();
  mutator.join();
  dog.stop();
#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS
  inj.disarm_all();
#endif

  SCOPED_TRACE(std::string(stm::to_string(p.algo)) + "/" +
               stm::to_string(p.clock) + "/" + stm::to_string(p.mode) +
               (p.mvcc ? "+mvcc" : ""));
  // No leak: quiescent, one forced pass drains limbo completely and the
  // arena returns to its post-setup level.
  view.reclaim_garbage();
  const stm::ReclaimStats rs = view.reclaim_stats();
  EXPECT_EQ(rs.depth, 0u);
  EXPECT_EQ(rs.retired, rs.reclaimed);
  EXPECT_EQ(view.arena().allocated(), baseline);
  // Clean shutdown: ledgers drained, token free.
  EXPECT_EQ(view.admission().admitted(), 0u);
  EXPECT_EQ(view.admission().serial_holder(), -1);
  // Conservation: the one init transaction is in the books; expired-at-
  // entry runs contributed neither a body invocation nor an event. A
  // budget that expires between enter()'s pre-admission check and the
  // deadline poll at the end of the engine's begin() records an abort
  // with no body invocation — at most once per DeadlineExceeded outcome
  // (it terminates the run), which bounds the slack exactly.
  const stm::StatsSnapshot st = view.stats();
  EXPECT_EQ(st.commits, commits_observed.load() + 1);
  EXPECT_GE(st.commits + st.aborts, body_attempts.load() + 1);
  EXPECT_LE(st.commits + st.aborts,
            body_attempts.load() + 1 + deadline_exceeded.load());
  EXPECT_EQ(core::vread(cell), increments_committed.load());
  // The watchdog ran (stop() joined its thread); alarms are diagnostic
  // only. Progress is implied by the joins above, but pin the vacuity of
  // the whole phase: at least SOMETHING committed.
  EXPECT_GT(commits_observed.load(), 0u);
}

TEST(TortureSmoke, ChaosAcrossEngineCorners) {
  unsigned i = 0;
  for (const TorturePhase& p : kPhases) {
    run_phase(p, i++, 300ms);
  }
}

}  // namespace
}  // namespace votm
