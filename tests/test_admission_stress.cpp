// Stress tests for the admission controller's lock-free fast path, run
// against BOTH implementations (the packed-word atomic gate and the legacy
// mutex gate must satisfy the same contract). Built for TSan: configure
// with -DVOTM_SANITIZE=thread and run the `stress` ctest label.
//
// Invariants checked under churn with a concurrent quota mutator:
//   - the number of threads inside the view never exceeds the quota bound
//     (max_threads here; instantaneous quota can be below the resident
//     count only transiently, by the documented lazy-lowering rule),
//   - a thread admitted in lock mode (observed quota == 1) is alone inside,
//     and no lock-mode holder coexists with a transactional admission,
//   - pause() returns only once the view is empty,
//   - raising the quota from 1 blocks until the lock-mode holder drains,
//   - after all workers join, admits == leaves and admitted() == 0.
//
// Violations are counted in atomics and asserted once at the end: gtest
// EXPECT_* is not thread-safe, and a counter keeps the hot loop cheap
// enough to stress the admission word rather than the test harness.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "rac/admission.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace votm::rac {
namespace {

class AdmissionStress : public ::testing::TestWithParam<AdmissionImpl> {};

TEST_P(AdmissionStress, ChurnKeepsInvariants) {
  constexpr unsigned kThreads = 8;
  constexpr int kCycles = 100000;
  AdmissionController ac(kThreads, kThreads, GetParam());

  std::atomic<int> inside{0};
  std::atomic<int> lock_holders{0};
  std::atomic<std::uint64_t> admits{0};
  std::atomic<std::uint64_t> leaves{0};
  std::atomic<int> bound_violations{0};
  std::atomic<int> lock_violations{0};
  std::atomic<int> pause_violations{0};
  std::atomic<unsigned> workers_done{0};
  StartBarrier start(kThreads + 1);

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      start.arrive_and_wait();
      for (int i = 0; i < kCycles; ++i) {
        unsigned q = 0;
        if (rng.below(8) == 0) {
          if (!ac.try_admit(&q)) continue;
        } else {
          q = ac.admit();
        }
        // inside is bumped after admit returns and dropped before leave,
        // so inside <= held admissions at every instant; the checks below
        // can under-report overlap but never report one that didn't exist.
        const int now = inside.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (now > static_cast<int>(kThreads)) {
          bound_violations.fetch_add(1, std::memory_order_relaxed);
        }
        if (q == 1) {
          // Lock mode: admitted at P == 0, and raising from Q = 1 drains
          // first, so nobody else can be inside for our whole stay.
          if (now != 1) lock_violations.fetch_add(1, std::memory_order_relaxed);
          lock_holders.fetch_add(1, std::memory_order_acq_rel);
        } else if (lock_holders.load(std::memory_order_acquire) != 0) {
          lock_violations.fetch_add(1, std::memory_order_relaxed);
        }
        admits.fetch_add(1, std::memory_order_relaxed);
        if (q == 1) lock_holders.fetch_sub(1, std::memory_order_acq_rel);
        inside.fetch_sub(1, std::memory_order_acq_rel);
        leaves.fetch_add(1, std::memory_order_relaxed);
        ac.leave();
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  // Quota mutator: cycles lock mode / low / full quota while the workers
  // churn, and periodically pauses to check the drain protocol.
  std::thread mutator([&] {
    const unsigned quotas[] = {1, 2, kThreads, kThreads};
    unsigned k = 0;
    while (workers_done.load(std::memory_order_acquire) < kThreads) {
      ac.set_quota(quotas[k % 4]);
      if (++k % 16 == 0) {
        ac.pause();
        if (inside.load(std::memory_order_acquire) != 0) {
          pause_violations.fetch_add(1, std::memory_order_relaxed);
        }
        ac.resume();
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ac.set_quota(kThreads);
  });

  start.arrive_and_wait();
  for (auto& th : pool) th.join();
  mutator.join();

  EXPECT_EQ(bound_violations.load(), 0);
  EXPECT_EQ(lock_violations.load(), 0);
  EXPECT_EQ(pause_violations.load(), 0);
  EXPECT_EQ(admits.load(), leaves.load());
  EXPECT_EQ(inside.load(), 0);
  EXPECT_EQ(ac.admitted(), 0u);
}

TEST_P(AdmissionStress, RaiseFromLockModeBlocksUntilDrain) {
  AdmissionController ac(4, 1, GetParam());
  ASSERT_EQ(ac.admit(), 1u);
  std::atomic<bool> raised{false};
  std::thread raiser([&] {
    ac.set_quota(4);
    raised.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(raised.load(std::memory_order_acquire));
  ac.leave();
  raiser.join();
  EXPECT_TRUE(raised.load());
  EXPECT_EQ(ac.quota(), 4u);
  EXPECT_EQ(ac.admitted(), 0u);
}

TEST_P(AdmissionStress, PauseWaitsForResidents) {
  constexpr unsigned kN = 4;
  AdmissionController ac(kN, kN, GetParam());
  std::atomic<int> inside{0};
  std::atomic<bool> release{false};
  StartBarrier ready(kN);  // 3 residents + main

  std::vector<std::thread> residents;
  for (unsigned i = 0; i < kN - 1; ++i) {
    residents.emplace_back([&] {
      ac.admit();
      inside.fetch_add(1, std::memory_order_acq_rel);
      ready.arrive_and_wait();
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      inside.fetch_sub(1, std::memory_order_acq_rel);
      ac.leave();
    });
  }
  ready.arrive_and_wait();
  EXPECT_EQ(ac.admitted(), kN - 1);

  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    release.store(true, std::memory_order_release);
  });
  ac.pause();  // must block until every resident has left
  EXPECT_EQ(inside.load(), 0);
  EXPECT_EQ(ac.admitted(), 0u);
  EXPECT_FALSE(ac.try_admit());  // paused gate rejects new admissions
  ac.resume();
  EXPECT_TRUE(ac.try_admit());
  ac.leave();

  releaser.join();
  for (auto& t : residents) t.join();
}

TEST_P(AdmissionStress, SetQuotaDuringOpenModeAccountsResidue) {
  // Full quota opens the fence-free gate; residents admitted through it
  // live in per-thread slot ledgers, not in P. Lowering the quota must
  // close the gate and carry those residents over (the RESIDUE protocol):
  // they stay visible in admitted() until they leave, and the ledger must
  // balance back to zero afterwards.
  constexpr unsigned kN = 4;
  AdmissionController ac(kN, kN, GetParam());
  std::atomic<bool> release{false};
  StartBarrier ready(3);  // 2 residents + main

  std::vector<std::thread> residents;
  for (int i = 0; i < 2; ++i) {
    residents.emplace_back([&] {
      EXPECT_EQ(ac.admit(), kN);
      ready.arrive_and_wait();
      while (!release.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ac.leave();
    });
  }
  ready.arrive_and_wait();
  EXPECT_EQ(ac.admitted(), 2u);

  ac.set_quota(2);  // closes the open gate with both residents inside
  EXPECT_EQ(ac.quota(), 2u);
  EXPECT_EQ(ac.admitted(), 2u);  // residue still accounted
  EXPECT_FALSE(ac.try_admit());  // 2 residents == new quota: full

  release.store(true, std::memory_order_release);
  for (auto& t : residents) t.join();
  EXPECT_EQ(ac.admitted(), 0u);

  unsigned q = 0;
  ASSERT_TRUE(ac.try_admit(&q));  // residue retired: gated path again
  EXPECT_EQ(q, 2u);
  ac.leave();
  EXPECT_EQ(ac.admitted(), 0u);
}

TEST_P(AdmissionStress, NonPowerOfTwoThreadCountChurn) {
  // N = 6 walks the quota chain 6 -> 3 -> 1 (odd halving steps) and lands
  // on quotas that alias under a log2 bucketing; the invariants must hold
  // off the power-of-two grid exactly as on it.
  constexpr unsigned kThreads = 6;
  constexpr int kCycles = 20000;
  AdmissionController ac(kThreads, kThreads, GetParam());

  std::atomic<int> inside{0};
  std::atomic<int> lock_holders{0};
  std::atomic<int> bound_violations{0};
  std::atomic<int> lock_violations{0};
  std::atomic<unsigned> workers_done{0};
  StartBarrier start(kThreads + 1);

  std::vector<std::thread> pool;
  pool.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      start.arrive_and_wait();
      for (int i = 0; i < kCycles; ++i) {
        unsigned q = 0;
        if (rng.below(8) == 0) {
          if (!ac.try_admit(&q)) continue;
        } else {
          q = ac.admit();
        }
        const int now = inside.fetch_add(1, std::memory_order_acq_rel) + 1;
        if (now > static_cast<int>(kThreads)) {
          bound_violations.fetch_add(1, std::memory_order_relaxed);
        }
        if (q == 1) {
          if (now != 1) lock_violations.fetch_add(1, std::memory_order_relaxed);
          lock_holders.fetch_add(1, std::memory_order_acq_rel);
        } else if (lock_holders.load(std::memory_order_acquire) != 0) {
          lock_violations.fetch_add(1, std::memory_order_relaxed);
        }
        if (q == 1) lock_holders.fetch_sub(1, std::memory_order_acq_rel);
        inside.fetch_sub(1, std::memory_order_acq_rel);
        ac.leave();
      }
      workers_done.fetch_add(1, std::memory_order_release);
    });
  }

  std::thread mutator([&] {
    const unsigned quotas[] = {1, 3, 5, kThreads};
    unsigned k = 0;
    while (workers_done.load(std::memory_order_acquire) < kThreads) {
      ac.set_quota(quotas[k++ % 4]);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ac.set_quota(kThreads);
  });

  start.arrive_and_wait();
  for (auto& th : pool) th.join();
  mutator.join();

  EXPECT_EQ(bound_violations.load(), 0);
  EXPECT_EQ(lock_violations.load(), 0);
  EXPECT_EQ(inside.load(), 0);
  EXPECT_EQ(ac.admitted(), 0u);
}

TEST_P(AdmissionStress, TryAdmitRacingPause) {
  // try_admit never blocks, so it races the pause drain protocol head-on:
  // every pause() return must still see an empty view, and a paused gate
  // must reject the non-blocking path outright.
  constexpr unsigned kThreads = 4;
  AdmissionController ac(kThreads, kThreads, GetParam());
  std::atomic<int> inside{0};
  std::atomic<bool> stop{false};
  std::atomic<int> pause_violations{0};
  StartBarrier start(kThreads + 1);

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      start.arrive_and_wait();
      while (!stop.load(std::memory_order_acquire)) {
        if (!ac.try_admit()) continue;
        inside.fetch_add(1, std::memory_order_acq_rel);
        inside.fetch_sub(1, std::memory_order_acq_rel);
        ac.leave();
      }
    });
  }

  start.arrive_and_wait();
  for (int k = 0; k < 200; ++k) {
    ac.pause();
    if (inside.load(std::memory_order_acquire) != 0 || ac.admitted() != 0) {
      pause_violations.fetch_add(1, std::memory_order_relaxed);
    }
    if (ac.try_admit()) {  // paused gate must refuse
      pause_violations.fetch_add(1, std::memory_order_relaxed);
      ac.leave();
    }
    ac.resume();
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();

  EXPECT_EQ(pause_violations.load(), 0);
  EXPECT_EQ(ac.admitted(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Impls, AdmissionStress,
    ::testing::Values(AdmissionImpl::kAtomic, AdmissionImpl::kMutex),
    [](const ::testing::TestParamInfo<AdmissionImpl>& info) {
      return info.param == AdmissionImpl::kAtomic ? "atomic" : "mutex";
    });

}  // namespace
}  // namespace votm::rac
