// Unit tests for the transaction-private logs (src/stm/logs.hpp) and the
// signature filters behind them (src/stm/signature.hpp): WriteSet's shared
// hash filter + open-addressing index, ValueReadLog's adjacent-duplicate
// collapse, OrecReadLog's dedup probe, and the shrink-with-hysteresis
// policy all three share.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "stm/logs.hpp"
#include "stm/orec_table.hpp"
#include "stm/signature.hpp"

namespace votm::stm {
namespace {

TEST(SigFilterTest, AddedAddressesAreAlwaysContained) {
  SigFilter f;
  std::vector<Word> words(97);
  for (Word& w : words) f.add(&w);
  for (const Word& w : words) EXPECT_TRUE(f.maybe_contains(&w));
}

TEST(SigFilterTest, IntersectsMatchesSharedAddress) {
  Word a = 0, b = 0, c = 0;
  SigFilter reads, writes;
  reads.add(&a);
  reads.add(&b);
  writes.add(&c);
  // A filter over {c} need not intersect {a, b}... (not guaranteed — hash
  // collisions are legal — but adding the shared address must intersect.)
  writes.add(&a);
  EXPECT_TRUE(reads.intersects(writes));
  SigFilter empty;
  EXPECT_FALSE(reads.intersects(empty));
  EXPECT_TRUE(empty.none());
}

TEST(WriteSetTest, LookupFindsInsertedAndMissesAbsent) {
  WriteSet ws;
  Word a = 0, b = 0;
  ws.insert(&a, 11);
  EXPECT_TRUE(ws.maybe_contains(&a));
  ASSERT_NE(ws.lookup(&a), nullptr);
  EXPECT_EQ(*ws.lookup(&a), 11u);
  // The filter may report a false positive for &b, but lookup() must still
  // return null: maybe_contains() is advisory, lookup() is exact.
  EXPECT_EQ(ws.lookup(&b), nullptr);
}

TEST(WriteSetTest, FilterNeverFalseNegative) {
  WriteSet ws;
  std::vector<Word> words(256);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ws.insert(&words[i], i);
  }
  for (const Word& w : words) {
    EXPECT_TRUE(ws.maybe_contains(&w));
    EXPECT_NE(ws.lookup(&w), nullptr);
  }
}

TEST(WriteSetTest, OverwriteUpdatesInPlace) {
  WriteSet ws;
  Word a = 0;
  ws.insert(&a, 1);
  ws.insert(&a, 2);
  ws.insert(&a, 3);
  EXPECT_EQ(ws.size(), 1u);
  EXPECT_EQ(*ws.lookup(&a), 3u);
}

TEST(WriteSetTest, GrowPreservesInsertionOrderAndLookups) {
  WriteSet ws;
  // Well past the initial index size so the open-addressing table rebuilds
  // several times; write-back order must stay exactly insertion order.
  std::vector<Word> words(1000);
  for (std::size_t i = 0; i < words.size(); ++i) {
    ws.insert(&words[i], i);
  }
  ASSERT_EQ(ws.size(), words.size());
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(ws.entries()[i].addr, &words[i]);
    EXPECT_EQ(ws.entries()[i].value, i);
    ASSERT_NE(ws.lookup(&words[i]), nullptr);
    EXPECT_EQ(*ws.lookup(&words[i]), i);
  }
}

TEST(WriteSetTest, ClearKeepsModestCapacity) {
  WriteSet ws;
  std::vector<Word> words(100);
  for (std::size_t i = 0; i < words.size(); ++i) ws.insert(&words[i], i);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.lookup(&words[0]), nullptr);
  EXPECT_GE(ws.entries().capacity(), 100u);  // below the shrink threshold
  ws.insert(&words[1], 7);
  EXPECT_EQ(*ws.lookup(&words[1]), 7u);
}

TEST(ValueReadLogTest, ReReadLoopStaysBounded) {
  ValueReadLog log;
  Word a = 42;
  for (int i = 0; i < 10000; ++i) log.push(&a, a);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_TRUE(log.values_match());
}

TEST(ValueReadLogTest, ChangedValueIsNotDeduped) {
  ValueReadLog log;
  Word a = 1;
  log.push(&a, 1);
  a = 2;
  log.push(&a, 2);  // same addr, different observed value: both stay
  EXPECT_EQ(log.size(), 2u);
  // The log now holds a torn pair; validation must see it.
  EXPECT_FALSE(log.values_match());
}

TEST(ValueReadLogTest, NonAdjacentDuplicateIsKept) {
  // Only ADJACENT duplicates collapse — an a,b,a pattern logs three
  // entries, preserving the old behaviour for interleaved reads.
  ValueReadLog log;
  Word a = 1, b = 2;
  log.push(&a, 1);
  log.push(&b, 2);
  log.push(&a, 1);
  EXPECT_EQ(log.size(), 3u);
}

TEST(OrecReadLogTest, DedupCollapsesRepeatedOrecs) {
  OrecTable table(64);
  Word a = 0;
  Orec* o = &table.for_address(&a);
  OrecReadLog log;
  log.set_dedup(true);
  for (int i = 0; i < 5000; ++i) log.push(o);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.entries()[0], o);
}

TEST(OrecReadLogTest, DedupOffAppendsEveryPush) {
  OrecTable table(64);
  Word a = 0;
  Orec* o = &table.for_address(&a);
  OrecReadLog log;
  log.set_dedup(false);
  for (int i = 0; i < 100; ++i) log.push(o);
  EXPECT_EQ(log.size(), 100u);
}

TEST(OrecReadLogTest, DistinctOrecsAllLoggedOnceAcrossGrow) {
  // Force many index rebuilds and verify each unique orec appears exactly
  // once even when pushed repeatedly in interleaved order.
  OrecTable table(1024);
  std::vector<Word> words(512);
  OrecReadLog log;
  log.set_dedup(true);
  for (int round = 0; round < 3; ++round) {
    for (Word& w : words) log.push(&table.for_address(&w));
  }
  // Distinct addresses may alias the same orec (legal), so compare against
  // the true unique-orec count.
  std::vector<const Orec*> unique;
  for (Word& w : words) {
    const Orec* o = &table.for_address(&w);
    bool seen = false;
    for (const Orec* u : unique) seen = seen || (u == o);
    if (!seen) unique.push_back(o);
  }
  EXPECT_EQ(log.size(), unique.size());
}

TEST(ShrinkHysteresisTest, ShrinksOnlyAfterSustainedLowUse) {
  std::vector<int> v;
  unsigned clears = 0;
  v.reserve(kLogShrinkCapacity * 8);
  const std::size_t big_cap = v.capacity();
  ASSERT_GT(big_cap, kLogShrinkCapacity);

  // One small transaction after a big one must NOT shrink (hysteresis).
  EXPECT_FALSE(maybe_shrink_log(v, /*last_used=*/4, clears));
  EXPECT_EQ(v.capacity(), big_cap);

  // An intervening big transaction resets the countdown.
  for (unsigned i = 0; i < kLogShrinkClears / 2; ++i) {
    EXPECT_FALSE(maybe_shrink_log(v, 4, clears));
  }
  EXPECT_FALSE(maybe_shrink_log(v, big_cap / 2, clears));  // high use
  for (unsigned i = 0; i < kLogShrinkClears - 1; ++i) {
    EXPECT_FALSE(maybe_shrink_log(v, 4, clears));
    EXPECT_EQ(v.capacity(), big_cap);
  }
  // The kLogShrinkClears-th consecutive low-use clear finally releases.
  EXPECT_TRUE(maybe_shrink_log(v, 4, clears));
  EXPECT_LT(v.capacity(), big_cap);
  EXPECT_GE(v.capacity(), kLogShrinkCapacity);
}

TEST(ShrinkHysteresisTest, ModestCapacityNeverShrinks) {
  std::vector<int> v;
  unsigned clears = 0;
  v.reserve(kLogShrinkCapacity / 2);
  const std::size_t cap = v.capacity();
  for (unsigned i = 0; i < kLogShrinkClears * 2; ++i) {
    EXPECT_FALSE(maybe_shrink_log(v, 0, clears));
  }
  EXPECT_EQ(v.capacity(), cap);
}

TEST(ShrinkHysteresisTest, WriteSetShrinkKeepsIndexConsistent) {
  WriteSet ws;
  std::vector<Word> words(kLogShrinkCapacity * 4);
  for (std::size_t i = 0; i < words.size(); ++i) ws.insert(&words[i], i);
  ws.clear();
  for (unsigned c = 0; c < kLogShrinkClears + 2; ++c) {
    ws.insert(&words[0], c);
    ws.clear();
  }
  // Post-shrink the index was rebuilt at its initial size; inserts and
  // lookups must still behave.
  for (std::size_t i = 0; i < 64; ++i) ws.insert(&words[i], i + 1);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_NE(ws.lookup(&words[i]), nullptr);
    EXPECT_EQ(*ws.lookup(&words[i]), i + 1);
  }
}

}  // namespace
}  // namespace votm::stm
