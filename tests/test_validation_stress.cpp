// Concurrency stress for the validation fast paths added with the
// signature-filter work: NOrec's commit write-signature ring (publish /
// read races under real threads, intended for -DVOTM_SANITIZE=thread via
// the check-tsan preset) and the orec engines' deduped read logs under
// stripe aliasing. Labeled `stress` in tests/CMakeLists.txt.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "stm/norec.hpp"
#include "stm/orec_eager_redo.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace votm::stm {
namespace {

template <typename Body>
void run_threads(unsigned threads, Body&& body) {
  StartBarrier barrier(threads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      TxThread tx;
      barrier.arrive_and_wait();
      body(t, tx);
    });
  }
  for (auto& th : pool) th.join();
}

// Readers take large read-only snapshots while disjoint writers commit and
// publish signatures; the filter path should skip most value validations,
// and under TSan every ring access is checked for races. The oracle is
// snapshot consistency: every pair the writers keep equal must read equal.
TEST(ValidationFilterStress, NorecReadersSkipDisjointCommits) {
  NOrecEngine engine(/*commit_filters=*/true);
  constexpr unsigned kReaders = 6;
  constexpr unsigned kWriters = 2;
  constexpr int kSnapshotWords = 64;
  std::vector<Word> shared(kSnapshotWords, 0);  // readers' snapshot region
  std::vector<Word> privates(kWriters * 16, 0); // writers' disjoint region
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> pool;
  StartBarrier barrier(kReaders + kWriters);
  for (unsigned w = 0; w < kWriters; ++w) {
    pool.emplace_back([&, w] {
      TxThread tx;
      barrier.arrive_and_wait();
      // Writers touch only their own stripe of `privates`, so reader
      // signatures and writer signatures are (modulo Bloom collisions)
      // disjoint — the readers' fast path actually runs.
      for (Word v = 1; v <= 3000; ++v) {
        atomically(engine, tx, [&](TxThread& t) {
          for (int i = 0; i < 4; ++i) {
            engine.write(t, &privates[w * 16 + i], v);
          }
        });
      }
      stop.store(true);
    });
  }
  for (unsigned r = 0; r < kReaders; ++r) {
    pool.emplace_back([&] {
      TxThread tx;
      barrier.arrive_and_wait();
      while (!stop.load(std::memory_order_relaxed)) {
        Word first = 0;
        bool consistent = true;
        atomically(engine, tx, [&](TxThread& t) {
          first = engine.read(t, &shared[0]);
          consistent = true;
          for (int i = 1; i < kSnapshotWords; ++i) {
            consistent = consistent && engine.read(t, &shared[i]) == first;
          }
        });
        if (!consistent) torn.fetch_add(1);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(torn.load(), 0u);
}

// Forces the overlap/fallback path: every transaction reads AND writes the
// same hot counters, so commit signatures always intersect reader
// signatures and values_match() must run. The oracle is exactness.
TEST(ValidationFilterStress, NorecFallbackKeepsCountersExact) {
  NOrecEngine engine(/*commit_filters=*/true);
  constexpr unsigned kThreads = 8;
  constexpr int kIncrements = 1500;
  Word a = 0, b = 0;
  run_threads(kThreads, [&](unsigned, TxThread& tx) {
    for (int i = 0; i < kIncrements; ++i) {
      atomically(engine, tx, [&](TxThread& t) {
        engine.write(t, &a, engine.read(t, &a) + 1);
        engine.write(t, &b, engine.read(t, &b) + 1);
      });
    }
  });
  EXPECT_EQ(a, static_cast<Word>(kThreads) * kIncrements);
  EXPECT_EQ(b, static_cast<Word>(kThreads) * kIncrements);
}

// Signature-ring wrap: a burst of tiny commits overruns the 64-slot ring
// between a reader's snapshot and its validation, forcing the conservative
// full-validation fallback. Snapshot consistency must survive the wrap.
TEST(ValidationFilterStress, NorecRingWrapFallsBackSafely) {
  NOrecEngine engine(/*commit_filters=*/true);
  constexpr unsigned kWriters = 4;
  Word x = 0, y = 0;
  std::vector<Word> noise(kWriters, 0);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> pool;
  StartBarrier barrier(kWriters + 1);
  for (unsigned w = 0; w < kWriters; ++w) {
    pool.emplace_back([&, w] {
      TxThread tx;
      barrier.arrive_and_wait();
      for (Word v = 1; v <= 4000; ++v) {
        // Every ~16th transaction bumps the x==y pair; the rest are tiny
        // commits that spin the sequence lock past the ring capacity.
        atomically(engine, tx, [&](TxThread& t) {
          if (v % 16 == 0) {
            const Word nx = engine.read(t, &x) + 1;
            engine.write(t, &x, nx);
            engine.write(t, &y, nx);
          } else {
            engine.write(t, &noise[w], v);
          }
        });
      }
      stop.store(true);
    });
  }
  pool.emplace_back([&] {
    TxThread tx;
    barrier.arrive_and_wait();
    while (!stop.load(std::memory_order_relaxed)) {
      Word sx = 0, sy = 0;
      atomically(engine, tx, [&](TxThread& t) {
        sx = engine.read(t, &x);
        sy = engine.read(t, &y);
      });
      if (sx != sy) torn.fetch_add(1);
    }
  });
  for (auto& th : pool) th.join();
  EXPECT_EQ(torn.load(), 0u);
}

// Orec read-log dedup under heavy stripe aliasing: a tiny orec table makes
// many addresses share stripes, and each transaction re-reads its working
// set several times. Exact counters prove validation over the deduped log
// is still sound.
TEST(ValidationFilterStress, OrecDedupExactUnderAliasing) {
  OrecEagerRedoEngine engine(/*orec_table_size=*/16);
  constexpr unsigned kThreads = 8;
  constexpr int kIncrements = 1000;
  constexpr int kCells = 8;
  std::vector<Word> cells(kCells, 0);
  run_threads(kThreads, [&](unsigned tid, TxThread& tx) {
    Xoshiro256 rng(tid + 1);
    for (int i = 0; i < kIncrements; ++i) {
      const auto cell = static_cast<std::size_t>(rng.below(kCells));
      atomically(engine, tx, [&](TxThread& t) {
        // Redundant scans of the whole array: every orec is hit many
        // times per transaction, so the dedup probe is the common case.
        Word sum = 0;
        for (int pass = 0; pass < 3; ++pass) {
          for (int c = 0; c < kCells; ++c) {
            sum += engine.read(t, &cells[static_cast<std::size_t>(c)]);
          }
        }
        (void)sum;
        engine.write(t, &cells[cell], engine.read(t, &cells[cell]) + 1);
      });
    }
  });
  Word total = 0;
  for (Word c : cells) total += c;
  EXPECT_EQ(total, static_cast<Word>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace votm::stm
