// Tests of the transactional containers: single-threaded semantics,
// concurrent invariants across algorithms (parameterized), and interaction
// with the view layer's transactional memory management.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "containers/tx_counter.hpp"
#include "containers/tx_hash_map.hpp"
#include "containers/tx_sorted_list.hpp"
#include "containers/tx_stack.hpp"
#include "containers/tx_var.hpp"
#include "util/rng.hpp"

namespace votm::containers {
namespace {

core::ViewConfig view_config(stm::Algo algo = stm::Algo::kNOrec,
                             unsigned threads = 8) {
  core::ViewConfig vc;
  vc.algo = algo;
  vc.max_threads = threads;
  vc.rac = core::RacMode::kAdaptive;
  vc.initial_bytes = 1 << 21;
  return vc;
}

// ---------------- TxVar ------------------------------------------------------

TEST(TxVarTest, GetSetRoundTrip) {
  core::View view(view_config());
  TxVar<stm::Word> w(view, 5);
  TxVar<std::uint32_t> u32(view, 7);
  TxVar<double> d(view, 2.5);
  view.execute([&] {
    EXPECT_EQ(w.get(), 5u);
    EXPECT_EQ(u32.get(), 7u);
    EXPECT_DOUBLE_EQ(d.get(), 2.5);
    w.set(6);
    u32.set(8);
    d.set(3.5);
  });
  EXPECT_EQ(w.get(), 6u);
  EXPECT_EQ(u32.get(), 8u);
  EXPECT_DOUBLE_EQ(d.get(), 3.5);
}

TEST(TxVarTest, UpdateIsAtomicUnderConcurrency) {
  core::View view(view_config());
  TxVar<stm::Word> counter(view, 0);
  constexpr unsigned kThreads = 6;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        view.execute([&] { counter.update([](stm::Word v) { return v + 1; }); });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(counter.get(), kThreads * static_cast<stm::Word>(kPerThread));
}

// ---------------- TxCounter --------------------------------------------------

TEST(TxCounterTest, ShardedAddsSumExactly) {
  core::View view(view_config());
  TxCounter counter(view, 8);
  constexpr unsigned kThreads = 6;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        view.execute([&] { counter.add(1); });
      }
    });
  }
  for (auto& th : pool) th.join();
  stm::Word total = 0;
  view.execute_read([&] { total = counter.value(); });
  EXPECT_EQ(total, kThreads * static_cast<stm::Word>(kPerThread));
}

TEST(TxCounterTest, ShardingReducesAbortsVersusSingleWord) {
  // Same increment load: one-word TxVar vs sharded TxCounter. The sharded
  // version must produce (weakly) fewer aborts — the design rationale.
  constexpr unsigned kThreads = 6;
  constexpr int kPerThread = 1500;

  auto run = [&](auto&& add_fn, core::View& view) {
    std::vector<std::thread> pool;
    for (unsigned t = 0; t < kThreads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < kPerThread; ++i) {
          view.execute([&] {
            add_fn();
            std::this_thread::yield();  // widen the conflict window
          });
        }
      });
    }
    for (auto& th : pool) th.join();
    return view.stats().aborts;
  };

  core::View hot_view(view_config(stm::Algo::kNOrec));
  TxVar<stm::Word> hot(hot_view, 0);
  const auto hot_aborts =
      run([&] { hot.update([](stm::Word v) { return v + 1; }); }, hot_view);

  core::View sharded_view(view_config(stm::Algo::kNOrec));
  TxCounter sharded(sharded_view, 16);
  const auto sharded_aborts = run([&] { sharded.add(1); }, sharded_view);

  EXPECT_LE(sharded_aborts, hot_aborts);
}

// ---------------- TxHashMap --------------------------------------------------

TEST(TxHashMapTest, PutGetEraseSemantics) {
  core::View view(view_config());
  TxHashMap map(view, 16);
  view.execute([&] {
    EXPECT_TRUE(map.put(1, 100));
    EXPECT_TRUE(map.put(2, 200));
    EXPECT_FALSE(map.put(1, 101));  // update, not insert
    stm::Word v = 0;
    EXPECT_TRUE(map.get(1, &v));
    EXPECT_EQ(v, 101u);
    EXPECT_TRUE(map.get(2, &v));
    EXPECT_EQ(v, 200u);
    EXPECT_FALSE(map.get(3, &v));
    EXPECT_EQ(map.size(), 2u);
    EXPECT_TRUE(map.erase(1));
    EXPECT_FALSE(map.erase(1));
    EXPECT_FALSE(map.contains(1));
    EXPECT_EQ(map.size(), 1u);
  });
}

TEST(TxHashMapTest, ChainsSurviveCollisions) {
  core::View view(view_config());
  TxHashMap map(view, 2);  // force chaining
  constexpr stm::Word kKeys = 200;
  view.execute([&] {
    for (stm::Word k = 1; k <= kKeys; ++k) EXPECT_TRUE(map.put(k, k * 10));
  });
  view.execute_read([&] {
    for (stm::Word k = 1; k <= kKeys; ++k) {
      stm::Word v = 0;
      ASSERT_TRUE(map.get(k, &v)) << k;
      EXPECT_EQ(v, k * 10);
    }
    EXPECT_EQ(map.size(), kKeys);
  });
  view.execute([&] {
    for (stm::Word k = 1; k <= kKeys; k += 2) EXPECT_TRUE(map.erase(k));
    EXPECT_EQ(map.size(), kKeys / 2);
  });
}

TEST(TxHashMapTest, AbortedInsertLeavesNoTrace) {
  core::View view(view_config());
  TxHashMap map(view, 16);
  const std::size_t before = view.arena().allocated();
  struct Boom {};
  EXPECT_THROW(view.execute([&] {
    map.put(7, 70);
    throw Boom{};
  }),
               Boom);
  view.execute_read([&] { EXPECT_FALSE(map.contains(7)); });
  EXPECT_EQ(view.arena().allocated(), before);  // node allocation undone
}

TEST(TxHashMapTest, ConcurrentDisjointKeyInsertions) {
  core::View view(view_config(stm::Algo::kOrecEagerRedo));
  TxHashMap map(view, 256);
  constexpr unsigned kThreads = 6;
  constexpr stm::Word kPerThread = 300;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (stm::Word i = 0; i < kPerThread; ++i) {
        const stm::Word key = t * 10000 + i + 1;
        view.execute([&] { map.put(key, key); });
      }
    });
  }
  for (auto& th : pool) th.join();
  view.execute_read([&] {
    EXPECT_EQ(map.size(), kThreads * static_cast<std::size_t>(kPerThread));
  });
}

TEST(TxHashMapTest, ConcurrentMixedWorkloadKeepsSizeConsistent) {
  core::View view(view_config());
  TxHashMap map(view, 64);
  constexpr unsigned kThreads = 4;
  std::vector<std::thread> pool;
  std::atomic<long> net{0};  // inserts minus erases that reported success
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(t + 1);
      long local = 0;
      for (int i = 0; i < 1500; ++i) {
        const stm::Word key = 1 + rng.below(64);
        if (rng.chance(1, 2)) {
          bool inserted = false;
          view.execute([&] { inserted = map.put(key, key); });
          if (inserted) ++local;
        } else {
          bool erased = false;
          view.execute([&] { erased = map.erase(key); });
          if (erased) --local;
        }
      }
      net.fetch_add(local);
    });
  }
  for (auto& th : pool) th.join();
  std::size_t size = 0;
  view.execute_read([&] { size = map.size(); });
  EXPECT_EQ(static_cast<long>(size), net.load());
}

// ---------------- TxStack ----------------------------------------------------

TEST(TxStackTest, LifoOrder) {
  core::View view(view_config());
  TxStack stack(view);
  view.execute([&] {
    EXPECT_TRUE(stack.empty());
    for (stm::Word v = 1; v <= 5; ++v) stack.push(v);
    EXPECT_EQ(stack.size(), 5u);
  });
  view.execute([&] {
    for (stm::Word v = 5; v >= 1; --v) {
      stm::Word out = 0;
      EXPECT_TRUE(stack.pop(&out));
      EXPECT_EQ(out, v);
    }
    stm::Word out;
    EXPECT_FALSE(stack.pop(&out));
  });
}

TEST(TxStackTest, ConcurrentPushPopConservesElements) {
  core::View view(view_config());
  TxStack stack(view);
  constexpr unsigned kThreads = 4;
  constexpr stm::Word kPerThread = 500;
  std::vector<std::vector<stm::Word>> popped(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      // Each thread pushes its own tagged values, then drains some.
      for (stm::Word i = 0; i < kPerThread; ++i) {
        view.execute([&] { stack.push((t + 1) * 100000 + i); });
      }
      for (stm::Word i = 0; i < kPerThread / 2; ++i) {
        stm::Word out = 0;
        bool ok = false;
        view.execute([&] { ok = stack.pop(&out); });
        if (ok) popped[t].push_back(out);
      }
    });
  }
  for (auto& th : pool) th.join();

  std::size_t remaining = 0;
  view.execute_read([&] { remaining = stack.size(); });
  std::size_t drained = 0;
  std::set<stm::Word> seen;
  for (const auto& vec : popped) {
    drained += vec.size();
    for (stm::Word v : vec) EXPECT_TRUE(seen.insert(v).second) << "dup " << v;
  }
  EXPECT_EQ(remaining + drained, kThreads * static_cast<std::size_t>(kPerThread));
}

// ---------------- TxSortedList -----------------------------------------------

TEST(TxSortedListTest, InsertKeepsOrder) {
  core::View view(view_config());
  TxSortedList list(view);
  view.execute([&] {
    for (stm::Word v : {5u, 1u, 9u, 3u, 7u, 3u}) list.insert(v);
    EXPECT_TRUE(list.is_sorted());
    EXPECT_EQ(list.size(), 6u);
    EXPECT_TRUE(list.contains(3));
    EXPECT_FALSE(list.contains(4));
  });
}

TEST(TxSortedListTest, EraseRemovesSingleInstance) {
  core::View view(view_config());
  TxSortedList list(view);
  view.execute([&] {
    list.insert(2);
    list.insert(2);
    list.insert(4);
    EXPECT_TRUE(list.erase(2));
    EXPECT_TRUE(list.contains(2));  // one instance left
    EXPECT_TRUE(list.erase(2));
    EXPECT_FALSE(list.contains(2));
    EXPECT_FALSE(list.erase(99));
    EXPECT_EQ(list.size(), 1u);
  });
}

class SortedListConcurrent : public ::testing::TestWithParam<stm::Algo> {};

TEST_P(SortedListConcurrent, StaysSortedWithExactCount) {
  core::View view(view_config(GetParam()));
  TxSortedList list(view);
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 250;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      Xoshiro256 rng(t + 17);
      for (int i = 0; i < kPerThread; ++i) {
        const stm::Word v = rng.below(1000);
        view.execute([&] { list.insert(v); });
      }
    });
  }
  for (auto& th : pool) th.join();
  view.execute_read([&] {
    EXPECT_TRUE(list.is_sorted());
    EXPECT_EQ(list.size(), kThreads * static_cast<std::size_t>(kPerThread));
  });
}

INSTANTIATE_TEST_SUITE_P(Algorithms, SortedListConcurrent,
                         ::testing::Values(stm::Algo::kNOrec,
                                           stm::Algo::kOrecEagerRedo,
                                           stm::Algo::kOrecLazy,
                                           stm::Algo::kTml),
                         [](const auto& info) { return to_string(info.param); });

}  // namespace
}  // namespace votm::containers
