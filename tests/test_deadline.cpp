// Bounded-time transactions and graceful overload (ctest -L fault).
//
// Pins the DESIGN.md §19 contracts with real threads and wall clocks:
//   * deadline guarantee per engine — a run past its budget surfaces
//     stm::DeadlineExceeded at the next validation/commit boundary, with
//     nothing held (no admission slot, no serial token, no epoch pin);
//   * the engine-specific exceptions are part of the contract: a TML
//     writer past its lock acquisition is irrevocable and COMMITS, and a
//     CGL / lock-mode execution is a plain critical section that always
//     runs to completion (its only deadline check is at entry);
//   * deadline x escalation — a budget that expires during the serial
//     drain releases the token before throwing (the gate must not wedge);
//   * factory-style sanitization of the new knobs (clamp + FactoryStats);
//   * limbo watermark backpressure — soft forces reclaim passes, hard
//     sheds admission quota — and View::health()'s internally consistent
//     snapshot under churn (the TSan hammer).
// The deterministic schedule-exploration side of the same contracts lives
// in DeadlineScenario (votm-check), driven from the bottom of this file.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/access.hpp"
#include "core/view.hpp"
#include "stm/abort.hpp"
#include "stm/factory.hpp"
#include "util/deadline.hpp"
#include "util/thread_ordinal.hpp"

namespace votm {
namespace {

using namespace std::chrono_literals;

core::ViewConfig base_config(stm::Algo algo, unsigned threads = 2) {
  core::ViewConfig vc;
  vc.algo = algo;
  vc.max_threads = threads;
  vc.rac = core::RacMode::kFixed;
  vc.fixed_quota = threads;
  vc.initial_bytes = 1 << 16;
  return vc;
}

stm::Word* make_cell(core::View& view) {
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { core::vwrite<stm::Word>(cell, 0); });
  return cell;
}

// Burn wall-clock time inside a transaction body without touching view
// memory (so the spin itself cannot conflict).
void spin_for(std::chrono::nanoseconds d) {
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Deadline, ExpiredAtEntryThrowsWithoutResidue) {
  core::View view(base_config(stm::Algo::kNOrec));
  stm::Word* cell = make_cell(view);
  bool body_ran = false;
  EXPECT_THROW(view.run_until(Deadline::after(0ns),
                              [&] {
                                body_ran = true;
                                core::vadd<stm::Word>(cell, 1);
                              }),
               stm::DeadlineExceeded);
  EXPECT_FALSE(body_ran) << "a past-deadline entry must not run the body";
  EXPECT_EQ(view.admission().admitted(), 0u);
  EXPECT_EQ(view.admission().serial_holder(), -1);
  // The gate is not wedged and the budget did not leak into the next run.
  view.execute([&] { core::vadd<stm::Word>(cell, 1); });
  EXPECT_EQ(core::vread(cell), 1u);
}

// Every speculative engine bounds a mid-transaction expiry by its next
// validation/commit step: the body finishes (it is not preempted), then
// the commit-entry poll surfaces DeadlineExceeded instead of publishing.
TEST(Deadline, MidTransactionExpirySurfacesAtCommitBoundary) {
  constexpr stm::Algo kSpeculative[] = {
      stm::Algo::kNOrec,
      stm::Algo::kOrecEagerRedo,
      stm::Algo::kOrecLazy,
      stm::Algo::kOrecEagerUndo,
  };
  for (stm::Algo algo : kSpeculative) {
    SCOPED_TRACE(stm::to_string(algo));
    core::View view(base_config(algo));
    stm::Word* cell = make_cell(view);
    EXPECT_THROW(view.run_for(2ms,
                              [&] {
                                spin_for(20ms);
                                core::vadd<stm::Word>(cell, 1);
                              }),
                 stm::DeadlineExceeded);
    EXPECT_EQ(core::vread(cell), 0u)
        << "a past-deadline transaction must not publish its writes";
    EXPECT_EQ(view.admission().admitted(), 0u);
    view.execute([&] { core::vadd<stm::Word>(cell, 1); });
    EXPECT_EQ(core::vread(cell), 1u);
  }
}

// TML checks the deadline at the last point before the point of no return:
// a first write past the budget aborts BEFORE acquiring the sequence lock…
TEST(Deadline, TmlChecksBeforeIrrevocability) {
  core::View view(base_config(stm::Algo::kTml));
  stm::Word* cell = make_cell(view);
  EXPECT_THROW(view.run_for(2ms,
                            [&] {
                              spin_for(20ms);
                              core::vadd<stm::Word>(cell, 1);  // first write
                            }),
               stm::DeadlineExceeded);
  EXPECT_EQ(core::vread(cell), 0u);
  EXPECT_EQ(view.admission().admitted(), 0u);
}

// …but once the TML writer holds the lock it is irrevocable: a budget that
// expires after the first write must still COMMIT (aborting would require
// rolling back in-place state TML does not log for conflicts).
TEST(Deadline, TmlWriterPastAcquisitionCommits) {
  core::View view(base_config(stm::Algo::kTml));
  stm::Word* cell = make_cell(view);
  view.run_for(2ms, [&] {
    core::vadd<stm::Word>(cell, 1);  // acquires the write lock
    spin_for(20ms);                  // budget expires while irrevocable
  });
  EXPECT_EQ(core::vread(cell), 1u)
      << "an irrevocable TML writer must run to completion";
  EXPECT_EQ(view.admission().admitted(), 0u);
}

// CGL (and RAC's Q == 1 lock mode, which shares the engine shape) is a
// plain critical section: the entry check is its only deadline check, and
// an admitted execution always runs to completion.
TEST(Deadline, CglRunsToCompletionOnceEntered) {
  core::View view(base_config(stm::Algo::kCgl));
  stm::Word* cell = make_cell(view);
  view.run_for(1ms, [&] {
    spin_for(10ms);
    core::vadd<stm::Word>(cell, 1);
  });
  EXPECT_EQ(core::vread(cell), 1u);
  // The entry check still applies: a pre-expired deadline never enters.
  EXPECT_THROW(
      view.run_until(Deadline::after(0ns),
                     [&] { core::vadd<stm::Word>(cell, 1); }),
      stm::DeadlineExceeded);
  EXPECT_EQ(core::vread(cell), 1u);
}

TEST(Deadline, ConfiguredBudgetArmsPerRun) {
  core::ViewConfig vc = base_config(stm::Algo::kOrecEagerRedo);
  vc.tx_deadline_ns = std::chrono::nanoseconds(2ms).count();
  core::View view(vc);
  stm::Word* cell = make_cell(view);
  EXPECT_THROW(view.execute([&] {
    spin_for(20ms);
    core::vadd<stm::Word>(cell, 1);
  }),
               stm::DeadlineExceeded);
  EXPECT_EQ(core::vread(cell), 0u);
  // The budget is per run, not per view: a fast run under the same config
  // commits, and a run_until override can disable it entirely.
  view.execute([&] { core::vadd<stm::Word>(cell, 1); });
  EXPECT_EQ(core::vread(cell), 1u);
  view.run_until(Deadline::none(), [&] {
    spin_for(10ms);  // would blow the configured 2ms budget
    core::vadd<stm::Word>(cell, 1);
  });
  EXPECT_EQ(core::vread(cell), 2u);
}

// Deadline x escalation, the release path: the victim escalates to the
// serial rung while a peer is still admitted, so acquire_serial drains —
// and the budget expires during that drain. The token MUST come back
// before the throw (holding it would close the gate for every peer
// forever), and the view must stay fully usable afterwards.
TEST(Deadline, SerialDrainPastDeadlineReleasesTheToken) {
  core::ViewConfig vc = base_config(stm::Algo::kOrecEagerRedo);
  vc.escalation.enabled = true;
  vc.escalation.aging_after = 1;
  vc.escalation.serial_after = 2;
  core::View view(vc);
  stm::Word* cell = make_cell(view);

  std::atomic<bool> peer_in{false};
  std::atomic<bool> release_peer{false};
  std::thread peer([&] {
    view.execute([&] {
      peer_in.store(true, std::memory_order_release);
      while (!release_peer.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      core::vadd<stm::Word>(cell, 1);
    });
  });
  while (!peer_in.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  std::thread releaser([&] {
    std::this_thread::sleep_for(300ms);
    release_peer.store(true, std::memory_order_release);
  });

  // Pre-seed the abort streak: the next entry takes the serial rung. The
  // drain blocks on the parked peer (~300ms) while the budget is 30ms.
  core::thread_ctx().tx.consecutive_aborts = vc.escalation.serial_after;
  EXPECT_THROW(
      view.run_until(Deadline::after(30ms),
                     [&] { core::vadd<stm::Word>(cell, 1); }),
      stm::DeadlineExceeded);
  peer.join();
  releaser.join();

  EXPECT_EQ(view.admission().serial_holder(), -1)
      << "the token must be released before DeadlineExceeded propagates";
  EXPECT_EQ(view.admission().admitted(), 0u);
  EXPECT_EQ(core::thread_ctx().tx.consecutive_aborts, 0u)
      << "the budget failure must not leak the escalation streak";
  // Not wedged: both an ordinary and an escalated run still work.
  view.execute([&] { core::vadd<stm::Word>(cell, 1); });
  core::thread_ctx().tx.consecutive_aborts = vc.escalation.serial_after;
  view.execute([&] { core::vadd<stm::Word>(cell, 1); });
  EXPECT_EQ(core::vread(cell), 3u);
  EXPECT_EQ(view.admission().serial_holder(), -1);
}

// ---------------------------------------------------------------------------
// Sanitization of the new robustness knobs (stm/factory.cpp)
// ---------------------------------------------------------------------------

TEST(RobustnessSanitize, NegativeDeadlineDisablesWithACount) {
  const stm::FactoryStats before = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_tx_deadline_ns(-5), 0);
  EXPECT_EQ(stm::factory_stats().deadline_clamps, before.deadline_clamps + 1);
  // Zero (disabled) and positive budgets pass through untouched.
  EXPECT_EQ(stm::sanitized_tx_deadline_ns(0), 0);
  EXPECT_EQ(stm::sanitized_tx_deadline_ns(12345), 12345);
  EXPECT_EQ(stm::factory_stats().deadline_clamps, before.deadline_clamps + 1);
  // View construction repairs the config instead of trusting it.
  core::ViewConfig vc = base_config(stm::Algo::kNOrec);
  vc.tx_deadline_ns = -1;
  core::View view(vc);
  EXPECT_EQ(view.config().tx_deadline_ns, 0);
  EXPECT_EQ(stm::factory_stats().deadline_clamps, before.deadline_clamps + 2);
}

TEST(RobustnessSanitize, CmWaitBudgetClampsIntoRange) {
  const stm::FactoryStats before = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_cm_wait_spin_limit(0), stm::kCmWaitSpinsMin);
  EXPECT_EQ(stm::sanitized_cm_wait_spin_limit(-7), stm::kCmWaitSpinsMin);
  EXPECT_EQ(stm::sanitized_cm_wait_spin_limit(std::int64_t{1} << 40),
            stm::kCmWaitSpinsMax);
  EXPECT_EQ(stm::factory_stats().cm_wait_clamps, before.cm_wait_clamps + 3);
  EXPECT_EQ(stm::sanitized_cm_wait_spin_limit(stm::kCmWaitSpinsDefault),
            stm::kCmWaitSpinsDefault);
  EXPECT_EQ(stm::factory_stats().cm_wait_clamps, before.cm_wait_clamps + 3);
  // Through the factory: a zero budget reaches the engine as the clamped
  // minimum, counted once more.
  stm::EngineConfig ec;
  ec.contention_mode = stm::ContentionMode::kWaitTimeout;
  ec.cm_wait_spin_limit = 0;
  auto engine = stm::make_engine(stm::Algo::kOrecEagerRedo, ec);
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(stm::factory_stats().cm_wait_clamps, before.cm_wait_clamps + 4);
}

TEST(RobustnessSanitize, HardWatermarkBelowSoftIsRaised) {
  const stm::FactoryStats before = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_limbo_hard_watermark(100, 10), 100u);
  EXPECT_EQ(stm::factory_stats().watermark_clamps,
            before.watermark_clamps + 1);
  // Either mark disabled (0), or a sane ordering: passes through.
  EXPECT_EQ(stm::sanitized_limbo_hard_watermark(0, 10), 10u);
  EXPECT_EQ(stm::sanitized_limbo_hard_watermark(100, 0), 0u);
  EXPECT_EQ(stm::sanitized_limbo_hard_watermark(10, 100), 100u);
  EXPECT_EQ(stm::factory_stats().watermark_clamps,
            before.watermark_clamps + 1);
  core::ViewConfig vc = base_config(stm::Algo::kNOrec);
  vc.limbo_soft_watermark = 8;
  vc.limbo_hard_watermark = 2;
  core::View view(vc);
  EXPECT_EQ(view.config().limbo_hard_watermark, 8u);
  EXPECT_EQ(stm::factory_stats().watermark_clamps,
            before.watermark_clamps + 2);
}

// ---------------------------------------------------------------------------
// Limbo watermark backpressure (DESIGN.md §19)
// ---------------------------------------------------------------------------

// One transactional alloc+free: commits exactly one block into limbo.
void retire_one(core::View& view) {
  view.execute([&] {
    auto* p = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
    core::vwrite<stm::Word>(p, 1);
    view.free(p);
  });
}

TEST(Overload, SoftWatermarkForcesReclaimPasses) {
  // Quota 2 keeps the view speculative: at quota 1 (lock mode) frees are
  // applied in place and never reach limbo, so there is nothing to mark.
  core::ViewConfig vc = base_config(stm::Algo::kNOrec, /*threads=*/2);
  vc.reclaim_threshold = 0;  // amortized passes off: only the watermark acts
  vc.limbo_soft_watermark = 4;
  core::View view(vc);
  for (int i = 0; i < 10; ++i) retire_one(view);
  // Single actor thread: no pins are live at any exit, so each forced pass
  // at depth 4 drains completely — exits 4 and 8 pass, leaving depth 2.
  const WatchdogSample h = view.health();
  EXPECT_EQ(h.overload.soft_passes, 2u);
  EXPECT_EQ(h.overload.limbo_depth, 2u);
  EXPECT_EQ(h.overload.limbo_depth_hwm, 4u);
  EXPECT_EQ(h.overload.quota_sheds, 0u) << "no hard mark: quota untouched";
  EXPECT_EQ(view.quota(), 2u);
  EXPECT_FALSE(h.overload.overloaded);
}

TEST(Overload, HardWatermarkShedsQuotaWhenReclaimCannotKeepUp) {
  core::ViewConfig vc = base_config(stm::Algo::kNOrec, /*threads=*/4);
  vc.reclaim_threshold = 0;
  vc.limbo_soft_watermark = 4;
  vc.limbo_hard_watermark = 8;
  core::View view(vc);

  // A parked reader pins the epoch, so forced passes free NOTHING: the
  // depth climbs through soft into hard, which must shed quota.
  std::atomic<bool> peer_in{false};
  std::atomic<bool> release_peer{false};
  stm::Word* cell = make_cell(view);
  std::thread peer([&] {
    view.execute([&] {
      core::vadd<stm::Word>(cell, 1);
      peer_in.store(true, std::memory_order_release);
      while (!release_peer.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    });
  });
  while (!peer_in.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // Exactly 8 retirements: depth hits the hard mark once (one shed,
  // 4 -> 2) and stops before a second shed could reach quota 1 — a
  // lock-mode view would block behind the parked peer.
  for (int i = 0; i < 8; ++i) retire_one(view);
  WatchdogSample h = view.health();
  EXPECT_GE(h.overload.soft_passes, 5u);  // exits 4..8 all forced a pass
  EXPECT_EQ(h.overload.quota_sheds, 1u);
  EXPECT_EQ(h.quota, 2u) << "hard watermark must halve the quota toward 1";
  EXPECT_TRUE(h.overload.overloaded);
  EXPECT_EQ(h.overload.limbo_depth, 8u) << "the pin held every block";

  release_peer.store(true, std::memory_order_release);
  peer.join();
  // Degraded, not broken: once the pin lifts, one forced pass drains
  // everything and the books balance.
  view.reclaim_garbage();
  const stm::ReclaimStats rs = view.reclaim_stats();
  EXPECT_EQ(rs.depth, 0u);
  EXPECT_EQ(rs.retired, rs.reclaimed);
  EXPECT_EQ(view.admission().admitted(), 0u);
}

// ---------------------------------------------------------------------------
// View::health() consistency under churn (the TSan hammer)
// ---------------------------------------------------------------------------

TEST(HealthConsistency, SnapshotStaysCoherentUnderQuotaChurn) {
  core::ViewConfig vc = base_config(stm::Algo::kOrecEagerRedo, /*threads=*/4);
  vc.reclaim_threshold = 4;
  vc.limbo_soft_watermark = 32;
  vc.limbo_hard_watermark = 64;
  core::View view(vc);
  stm::Word* cell = make_cell(view);

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        view.execute([&] { core::vadd<stm::Word>(cell, 1); });
        retire_one(view);
      }
    });
  }
  std::thread mutator([&] {
    unsigned q = 1;
    while (!stop.load(std::memory_order_acquire)) {
      view.set_quota(1 + (q++ % 4));
      std::this_thread::sleep_for(1ms);
    }
    view.set_quota(4);
  });

  std::uint64_t prev_commits = 0;
  const auto until = std::chrono::steady_clock::now() + 300ms;
  while (std::chrono::steady_clock::now() < until) {
    const WatchdogSample h = view.health();
    // The (quota, admitted, serial_holder) triple comes from one packed
    // snapshot: each field must be individually sane, and the monotonic
    // counters must never run backwards.
    ASSERT_GE(h.quota, 1u);
    ASSERT_LE(h.quota, 4u);
    ASSERT_LE(h.admitted, 4u);
    ASSERT_GE(h.serial_holder, -1);
    ASSERT_GE(h.commits, prev_commits);
    prev_commits = h.commits;
    ASSERT_LE(h.overload.soft_watermark, h.overload.hard_watermark);
  }
  stop.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  mutator.join();
  EXPECT_EQ(view.admission().admitted(), 0u);
  EXPECT_EQ(view.admission().serial_holder(), -1);
}

}  // namespace
}  // namespace votm

// ---------------------------------------------------------------------------
// Deterministic schedule exploration (votm-check)
// ---------------------------------------------------------------------------

#include "check/sched_point.hpp"

#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS

#include "check/explore.hpp"
#include "check/scenarios.hpp"

namespace votm::check {
namespace {

// The three-case deadline program (expired entry / escalate-to-serial /
// deadline-outranks-escalation) must hold on every engine under every
// explored schedule — including CGL, whose serial rung degenerates to the
// plain critical section.
TEST(DeadlineSchedules, ProgramHoldsAcrossEnginesAndSchedules) {
  constexpr stm::Algo kAll[] = {
      stm::Algo::kNOrec,         stm::Algo::kTml,
      stm::Algo::kOrecEagerRedo, stm::Algo::kOrecLazy,
      stm::Algo::kOrecEagerUndo, stm::Algo::kCgl,
  };
  for (stm::Algo algo : kAll) {
    DeadlineScenarioConfig cfg;
    cfg.algo = algo;
    DeadlineScenario scenario(cfg);
    const auto report = explore_random(scenario, 20, 0xDEAD11);
    EXPECT_TRUE(report.clean())
        << stm::to_string(algo) << " :: " << report.repro;
  }
}

}  // namespace
}  // namespace votm::check

#endif  // VOTM_SCHED_POINTS
