// Tests of the Eigenbench workload: configuration validation, completion
// and statistics across layouts/algorithms/RAC modes, contention ordering
// between the paper's view-1 and view-2 parameter sets, and watchdog
// behaviour.
//
// All runs here use heavily scaled-down loop counts; the table-scale runs
// live in bench/.
#include <gtest/gtest.h>

#include "eigenbench/eigenbench.hpp"

namespace votm::eigen {
namespace {

ObjectParams tiny(ObjectParams p, std::uint64_t loops) {
  p.loops = loops;
  return p;
}

// Scaled-down versions of the paper's Table II objects.
ObjectParams hot_object(std::uint64_t loops = 60) {
  ObjectParams p = paper_view1();
  p.a1 = 64;  // keep the hot array small relative to access count
  p.r1 = 20;
  p.w1 = 8;
  p.r2 = 4;
  p.w2 = 4;
  p.a2 = 1024;
  p.a3 = 256;
  return tiny(p, loops);
}

ObjectParams cold_object(std::uint64_t loops = 60) {
  ObjectParams p = paper_view2();
  p.a1 = 4096;
  p.r1 = 4;
  p.w1 = 2;
  p.r2 = 4;
  p.w2 = 4;
  p.a2 = 1024;
  p.a3 = 256;
  p.r3i = 2;
  p.w3i = 1;
  p.nopi = 5;
  return tiny(p, loops);
}

struct Case {
  Layout layout;
  stm::Algo algo;
  core::RacMode rac;
  const char* name;
};

class EigenRun : public ::testing::TestWithParam<Case> {};

TEST_P(EigenRun, CompletesAndCountsEveryTransaction) {
  const Case& c = GetParam();
  WorldConfig wc;
  wc.layout = c.layout;
  wc.objects = {hot_object(40), cold_object(40)};
  wc.n_threads = 4;
  wc.algo = c.algo;
  wc.rac = c.rac;
  wc.adapt_interval = 64;
  if (c.rac == core::RacMode::kFixed) {
    wc.fixed_quotas.assign(c.layout == Layout::kSingleView ? 1 : 2, 2);
  }
  EigenWorld world(wc);
  const RunReport report = world.run();

  EXPECT_FALSE(report.livelocked);
  EXPECT_DOUBLE_EQ(report.completed_fraction, 1.0);
  // Every scheduled transaction commits exactly once.
  const std::uint64_t expected = 2ull * 40 * wc.n_threads;
  EXPECT_EQ(report.total.commits, expected);
  EXPECT_EQ(report.views.size(), c.layout == Layout::kSingleView ? 1u : 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EigenRun,
    ::testing::Values(
        Case{Layout::kSingleView, stm::Algo::kNOrec, core::RacMode::kAdaptive,
             "single_norec_adaptive"},
        Case{Layout::kMultiView, stm::Algo::kNOrec, core::RacMode::kAdaptive,
             "multi_norec_adaptive"},
        Case{Layout::kSingleView, stm::Algo::kOrecEagerRedo,
             core::RacMode::kFixed, "single_oer_fixed2"},
        Case{Layout::kMultiView, stm::Algo::kOrecEagerRedo,
             core::RacMode::kFixed, "multi_oer_fixed2"},
        Case{Layout::kMultiView, stm::Algo::kNOrec, core::RacMode::kDisabled,
             "multiTM_norec"},
        Case{Layout::kSingleView, stm::Algo::kNOrec, core::RacMode::kDisabled,
             "plainTM_norec"},
        Case{Layout::kMultiView, stm::Algo::kTml, core::RacMode::kAdaptive,
             "multi_tml_adaptive"}),
    [](const auto& info) { return info.param.name; });

TEST(EigenParams, PaperTableTwoValuesAreEncodedExactly) {
  // Table II of the paper, verbatim.
  const ObjectParams v1 = paper_view1();
  EXPECT_EQ(v1.a1, 256u);
  EXPECT_EQ(v1.a2, 16384u);
  EXPECT_EQ(v1.a3, 8192u);
  EXPECT_EQ(v1.r1, 80u);
  EXPECT_EQ(v1.w1, 20u);
  EXPECT_EQ(v1.r2, 10u);
  EXPECT_EQ(v1.w2, 10u);
  EXPECT_EQ(v1.r3i, 0u);
  EXPECT_EQ(v1.w3i, 0u);
  EXPECT_EQ(v1.nopi, 0u);
  EXPECT_EQ(v1.loops, 100000u);

  const ObjectParams v2 = paper_view2();
  EXPECT_EQ(v2.a1, 16384u);
  EXPECT_EQ(v2.a2, 16384u);
  EXPECT_EQ(v2.a3, 8192u);
  EXPECT_EQ(v2.r1, 10u);
  EXPECT_EQ(v2.w1, 10u);
  EXPECT_EQ(v2.r2, 10u);
  EXPECT_EQ(v2.w2, 10u);
  EXPECT_EQ(v2.r3i, 5u);
  EXPECT_EQ(v2.w3i, 1u);
  EXPECT_EQ(v2.nopi, 20u);
  EXPECT_EQ(v2.loops, 100000u);
  // Outside-transaction work is zero in the paper's configuration.
  EXPECT_EQ(v2.r3o, 0u);
  EXPECT_EQ(v2.w3o, 0u);
  EXPECT_EQ(v2.nopo, 0u);
}

TEST(EigenWorldTest, RejectsEmptyObjects) {
  WorldConfig wc;
  wc.objects = {};
  EXPECT_THROW(EigenWorld{wc}, std::invalid_argument);
}

TEST(EigenWorldTest, RejectsMismatchedQuotaVector) {
  WorldConfig wc;
  wc.objects = {hot_object(1), cold_object(1)};
  wc.layout = Layout::kMultiView;
  wc.rac = core::RacMode::kFixed;
  wc.fixed_quotas = {2};  // needs 2 entries
  EXPECT_THROW(EigenWorld{wc}, std::invalid_argument);
}

TEST(EigenWorldTest, HotViewHasMoreContentionThanColdView) {
  // Multi-view: per-view abort statistics must reflect the designed
  // contention asymmetry (this is the premise of Observation 2).
  WorldConfig wc;
  wc.layout = Layout::kMultiView;
  wc.objects = {hot_object(150), cold_object(150)};
  wc.n_threads = 4;
  wc.algo = stm::Algo::kNOrec;
  wc.rac = core::RacMode::kDisabled;  // no admission: raw contention
  wc.yield_every_n_accesses = 2;      // force transaction overlap
  EigenWorld world(wc);
  const RunReport report = world.run();
  ASSERT_EQ(report.views.size(), 2u);
  const auto& hot = report.views[0].stats;
  const auto& cold = report.views[1].stats;
  EXPECT_GT(hot.aborts, cold.aborts);
}

TEST(EigenWorldTest, SingleViewAggregatesBothObjects) {
  WorldConfig wc;
  wc.layout = Layout::kSingleView;
  wc.objects = {hot_object(30), cold_object(30)};
  wc.n_threads = 2;
  wc.algo = stm::Algo::kNOrec;
  wc.rac = core::RacMode::kAdaptive;
  EigenWorld world(wc);
  const RunReport report = world.run();
  ASSERT_EQ(report.views.size(), 1u);
  EXPECT_EQ(report.views[0].stats.commits, 2ull * 30 * 2);
}

TEST(EigenWorldTest, FixedQuotaOneNeverAborts) {
  WorldConfig wc;
  wc.layout = Layout::kSingleView;
  wc.objects = {hot_object(60)};
  wc.n_threads = 4;
  wc.algo = stm::Algo::kOrecEagerRedo;
  wc.rac = core::RacMode::kFixed;
  wc.fixed_quotas = {1};
  EigenWorld world(wc);
  const RunReport report = world.run();
  EXPECT_EQ(report.total.aborts, 0u);
  EXPECT_EQ(report.total.commits, 60ull * 4);
}

TEST(EigenWorldTest, WatchdogStopsARunAndReportsPartialProgress) {
  WorldConfig wc;
  wc.layout = Layout::kSingleView;
  wc.objects = {hot_object(200000)};  // far more work than the cap allows
  wc.n_threads = 4;
  wc.algo = stm::Algo::kNOrec;
  wc.rac = core::RacMode::kDisabled;
  wc.time_cap_seconds = 0.3;
  EigenWorld world(wc);
  const RunReport report = world.run();
  EXPECT_TRUE(report.livelocked);  // flagged: cut off before completion
  EXPECT_LT(report.completed_fraction, 1.0);
  EXPECT_LT(report.runtime_seconds, 5.0);
}

TEST(EigenWorldTest, AdaptiveSingleViewLowersQuotaForHotWorkload) {
  WorldConfig wc;
  wc.layout = Layout::kSingleView;
  wc.objects = {hot_object(100)};
  wc.n_threads = 8;
  wc.algo = stm::Algo::kOrecEagerRedo;
  wc.rac = core::RacMode::kAdaptive;
  wc.adapt_interval = 128;
  wc.yield_every_n_accesses = 4;  // hold encounter-time locks across yields
  EigenWorld world(wc);
  const RunReport report = world.run();
  EXPECT_FALSE(report.livelocked);
  EXPECT_EQ(report.total.commits, 100ull * 8);
  EXPECT_LT(report.views[0].final_quota, 8u);
}

TEST(EigenWorldTest, DeterministicScheduleAcrossRuns) {
  // Same seed => same per-view commit counts (the schedule and the bodies
  // are seed-derived; abort counts may differ, commits must not).
  auto make = [] {
    WorldConfig wc;
    wc.layout = Layout::kMultiView;
    wc.objects = {hot_object(25), cold_object(25)};
    wc.n_threads = 3;
    wc.algo = stm::Algo::kNOrec;
    wc.rac = core::RacMode::kDisabled;
    wc.seed = 77;
    return wc;
  };
  EigenWorld w1(make()), w2(make());
  const RunReport r1 = w1.run(), r2 = w2.run();
  ASSERT_EQ(r1.views.size(), r2.views.size());
  for (std::size_t i = 0; i < r1.views.size(); ++i) {
    EXPECT_EQ(r1.views[i].stats.commits, r2.views[i].stats.commits);
  }
}

}  // namespace
}  // namespace votm::eigen
