// Orec-table metadata knobs (stm/orec_table.hpp): granularity/layout
// config semantics, factory sanitization, the packed-word lock round-trip
// at both layouts, index_for aliasing shape, stripe-map agreement between
// the table, the MVCC rings and the read-log dedup, NUMA placement
// degradation, and votm-check walks over the knob matrix.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "stm/engine.hpp"
#include "stm/factory.hpp"
#include "stm/logs.hpp"
#include "stm/orec_eager_redo.hpp"
#include "stm/orec_table.hpp"
#include "util/numa.hpp"

namespace votm {
namespace {

using stm::Orec;
using stm::OrecLayout;
using stm::OrecTable;
using stm::OrecTableConfig;

constexpr OrecLayout kLayouts[] = {OrecLayout::kPadded, OrecLayout::kPacked};

OrecTableConfig make_config(std::size_t size, unsigned shift,
                            OrecLayout layout) {
  OrecTableConfig cfg;
  cfg.size = size;
  cfg.granularity_shift = shift;
  cfg.layout = layout;
  return cfg;
}

TEST(OrecLayoutNames, RoundTrip) {
  for (OrecLayout l : kLayouts) {
    OrecLayout parsed{};
    ASSERT_TRUE(stm::orec_layout_from_string(stm::to_string(l), &parsed));
    EXPECT_EQ(parsed, l);
  }
  OrecLayout parsed{};
  EXPECT_TRUE(stm::orec_layout_from_string("PACKED", &parsed));
  EXPECT_EQ(parsed, OrecLayout::kPacked);
  EXPECT_FALSE(stm::orec_layout_from_string("interleaved", &parsed));
}

TEST(OrecTableConfigUnit, ImplicitFromSizeKeepsLegacyMeaning) {
  // `OrecTable(1 << 10)` must keep meaning what it always meant: that
  // size, with every other knob at its historical default.
  const OrecTableConfig cfg = std::size_t{1} << 10;
  EXPECT_EQ(cfg.size, std::size_t{1} << 10);
  EXPECT_EQ(cfg.granularity_shift, OrecTableConfig::kDefaultGranularityShift);
  EXPECT_EQ(cfg.layout, OrecLayout::kPadded);
  EXPECT_EQ(cfg.numa, NumaMode::kNone);
}

TEST(OrecTableConfigUnit, DirectConstructionStaysStrict) {
  // The factory sanitizes; direct construction throws. Both halves of
  // that contract are pinned.
  EXPECT_THROW(OrecTable(OrecTableConfig{std::size_t{0}}),
               std::invalid_argument);
  EXPECT_THROW(OrecTable(OrecTableConfig{std::size_t{1000}}),
               std::invalid_argument);
  EXPECT_THROW(OrecTable(make_config(64, 2, OrecLayout::kPadded)),
               std::invalid_argument);
  EXPECT_THROW(OrecTable(make_config(64, 13, OrecLayout::kPadded)),
               std::invalid_argument);
  // Size 1 is a legal power of two: every address aliases one orec.
  OrecTable tiny{OrecTableConfig{std::size_t{1}}};
  int a = 0;
  int b = 0;
  EXPECT_EQ(&tiny.for_address(&a), &tiny.for_address(&b));
}

TEST(FactorySanitize, RoundsSizeUpAndCountsIt) {
  const auto before = stm::factory_stats();
  stm::EngineConfig cfg;
  cfg.orec_table_size = 1000;
  const OrecTableConfig t = stm::sanitized_orec_table_config(cfg);
  EXPECT_EQ(t.size, 1024u);
  EXPECT_EQ(stm::factory_stats().orec_size_roundups,
            before.orec_size_roundups + 1);

  // The 0 edge rounds up to 1 instead of masking with size_t(-1).
  cfg.orec_table_size = 0;
  EXPECT_EQ(stm::sanitized_orec_table_config(cfg).size, 1u);
  // The 1 edge is already a power of two: untouched, not counted.
  cfg.orec_table_size = 1;
  const auto mid = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_orec_table_config(cfg).size, 1u);
  EXPECT_EQ(stm::factory_stats().orec_size_roundups, mid.orec_size_roundups);
}

TEST(FactorySanitize, ClampsGranularityAndCountsIt) {
  const auto before = stm::factory_stats();
  stm::EngineConfig cfg;
  cfg.orec_granularity_shift = 0;
  EXPECT_EQ(stm::sanitized_orec_table_config(cfg).granularity_shift,
            OrecTableConfig::kMinGranularityShift);
  cfg.orec_granularity_shift = 20;
  EXPECT_EQ(stm::sanitized_orec_table_config(cfg).granularity_shift,
            OrecTableConfig::kMaxGranularityShift);
  EXPECT_EQ(stm::factory_stats().orec_granularity_clamps,
            before.orec_granularity_clamps + 2);
  // In-range shifts pass through untouched.
  cfg.orec_granularity_shift = 6;
  const auto mid = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_orec_table_config(cfg).granularity_shift, 6u);
  EXPECT_EQ(stm::factory_stats().orec_granularity_clamps,
            mid.orec_granularity_clamps);
}

TEST(FactorySanitize, NonPow2SizeStillYieldsAWorkingEngine) {
  stm::EngineConfig cfg;
  cfg.orec_table_size = 100;  // rounds to 128 inside make_engine
  cfg.orec_granularity_shift = 6;
  cfg.orec_layout = OrecLayout::kPacked;
  auto engine = stm::make_engine(stm::Algo::kOrecEagerRedo, cfg);
  stm::TxThread tx;
  stm::Word cell = 0;
  for (int i = 0; i < 10; ++i) {
    stm::atomically(*engine, tx, [&](stm::TxThread& t) {
      engine->write(t, &cell, engine->read(t, &cell) + 1);
    });
  }
  EXPECT_EQ(cell, 10u);
}

TEST(OrecPacking, LockRoundTripAtBothLayouts) {
  // pack_owner steals the LSB as the lock tag; alignof(TxThread) >= 2 is
  // statically asserted in engine.hpp, checked live here against a real
  // thread descriptor's address, at both table strides.
  EXPECT_GE(alignof(stm::TxThread), 2u);
  stm::TxThread tx;
  for (OrecLayout layout : kLayouts) {
    OrecTable table(make_config(64, 3, layout));
    for (std::size_t i : {std::size_t{0}, std::size_t{1}, std::size_t{63}}) {
      Orec& o = table.at(i);
      ASSERT_TRUE(o.try_lock(Orec::pack_version(0), &tx));
      const Orec::Packed locked = o.load();
      EXPECT_TRUE(Orec::is_locked(locked));
      EXPECT_EQ(Orec::owner_of(locked), &tx) << stm::to_string(layout);
      o.unlock_to_version(7);
      const Orec::Packed unlocked = o.load();
      EXPECT_FALSE(Orec::is_locked(unlocked));
      EXPECT_EQ(Orec::version_of(unlocked), 7u);
    }
  }
  // Version payloads survive the shift round-trip well past 32 bits.
  const std::uint64_t big = std::uint64_t{1} << 40;
  EXPECT_EQ(Orec::version_of(Orec::pack_version(big)), big);
  EXPECT_FALSE(Orec::is_locked(Orec::pack_version(big)));
}

TEST(OrecTableLayout, StrideAndFootprintMatchTheKnob) {
  OrecTable padded(make_config(16, 3, OrecLayout::kPadded));
  OrecTable packed(make_config(16, 3, OrecLayout::kPacked));
  const auto gap = [](OrecTable& t) {
    return reinterpret_cast<std::uintptr_t>(&t.at(1)) -
           reinterpret_cast<std::uintptr_t>(&t.at(0));
  };
  EXPECT_EQ(gap(padded), 64u);  // one orec per line: no metadata sharing
  EXPECT_EQ(gap(packed), sizeof(Orec));  // eight per line
  EXPECT_EQ(padded.backing_bytes(), 16u * 64u);
  EXPECT_EQ(packed.backing_bytes(), 16u * sizeof(Orec));
  EXPECT_EQ(padded.layout(), OrecLayout::kPadded);
  EXPECT_EQ(packed.layout(), OrecLayout::kPacked);
  // The base is cache-line aligned in both layouts, so a padded orec never
  // straddles lines.
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&padded.at(0)) % 64, 0u);
}

TEST(OrecIndexing, AddressesInOneBlockShareAStripe) {
  // The granularity shift folds a 2^shift-byte block onto one stripe key
  // BEFORE the mix, so intra-block aliasing is exact, not probabilistic.
  alignas(4096) static std::byte block[8192];
  for (OrecLayout layout : kLayouts) {
    for (unsigned shift : {3u, 6u, 12u}) {
      OrecTable table(make_config(256, shift, layout));
      const std::size_t bytes = std::size_t{1} << shift;
      const std::size_t base_idx = table.index_for(&block[0]);
      for (std::size_t off = 0; off < bytes; off += 8) {
        EXPECT_EQ(table.index_for(&block[off]), base_idx)
            << "shift=" << shift << " off=" << off;
      }
      // The next block is free to land anywhere — but index_for must
      // still be a pure function of the block id.
      EXPECT_EQ(table.index_for(&block[bytes]),
                table.index_for(&block[bytes + 8 % bytes]));
    }
  }
}

std::size_t distinct_stripes(OrecTable& table, const std::byte* base,
                             std::size_t count, std::size_t step) {
  std::set<std::size_t> seen;
  for (std::size_t i = 0; i < count; ++i) {
    seen.insert(table.index_for(base + i * step));
  }
  return seen.size();
}

TEST(OrecIndexing, AliasingHistogramsMatchGranularity) {
  alignas(64) static std::byte arena[1 << 15];  // 32 KiB
  OrecTable g3(make_config(4096, 3, OrecLayout::kPadded));
  OrecTable g6(make_config(4096, 6, OrecLayout::kPacked));

  // Sequential word walk: 4096 words are 4096 distinct g3 keys but only
  // 512 distinct cache-line blocks, so g6 folds them 8:1 by construction.
  const std::size_t seq3 = distinct_stripes(g3, arena, 4096, 8);
  const std::size_t seq6 = distinct_stripes(g6, arena, 4096, 8);
  EXPECT_GT(seq3, 2000u);  // ~4096*(1-1/e) for a well-mixed hash
  EXPECT_LE(seq6, 512u);   // hard cap: one stripe key per block
  EXPECT_GT(seq6, 300u);   // ...but the 512 keys still spread

  // Strided walk, one word per cache line: both granularities see one key
  // per sample, so the spread must be comparable — the knob changes which
  // addresses collide, not how well the hash mixes.
  const std::size_t strided3 = distinct_stripes(g3, arena, 512, 64);
  const std::size_t strided6 = distinct_stripes(g6, arena, 512, 64);
  EXPECT_GT(strided3, 300u);
  EXPECT_GT(strided6, 300u);

  // Heap-like scatter: random 8-aligned addresses over a wide range must
  // not pile up on a few stripes at any granularity.
  std::mt19937_64 rng(0xA11A5);
  for (OrecTable* table : {&g3, &g6}) {
    std::vector<std::size_t> load(table->size(), 0);
    std::size_t max_load = 0;
    for (int i = 0; i < 4096; ++i) {
      const std::uintptr_t addr = (rng() & ((std::uintptr_t{1} << 40) - 1)) & ~std::uintptr_t{7};
      const std::size_t idx =
          table->index_for(reinterpret_cast<const void*>(addr));
      ASSERT_LT(idx, table->size());
      max_load = std::max(max_load, ++load[idx]);
    }
    // 4096 balls in 4096 bins: expected max load ~ log n / log log n ≈ 6.
    EXPECT_LE(max_load, 16u);
  }
}

TEST(StripeMapConsistency, DedupAgreesWithTheTableAtEveryKnob) {
  // The read-log dedup keys on Orec POINTERS, so it collapses exactly the
  // reads the table maps to one stripe — at every granularity and both
  // strides. A mismatch would make validation scan length diverge from
  // the conflict map.
  alignas(64) static std::byte arena[1 << 12];
  for (OrecLayout layout : kLayouts) {
    for (unsigned shift : {3u, 6u}) {
      OrecTable table(make_config(256, shift, layout));
      stm::OrecReadLog rlog;
      rlog.set_dedup(true);
      std::set<std::size_t> stripes;
      for (std::size_t off = 0; off < (1u << 12); off += 8) {
        stripes.insert(table.index_for(&arena[off]));
        rlog.push(&table.for_address(&arena[off]));
      }
      EXPECT_EQ(rlog.size(), stripes.size())
          << stm::to_string(layout) << " g" << shift;
      rlog.clear();
    }
  }
}

TEST(StripeMapConsistency, PackedNeighborsStayDistinctInTheDedupHash) {
  // Regression for the old `>> 6` orec_hash: at the packed 8 B stride it
  // hashed all eight line-mates identically, degenerating the dedup's
  // signature filter and probe chain. Consecutive packed orecs must log
  // as distinct entries.
  OrecTable packed(make_config(64, 3, OrecLayout::kPacked));
  stm::OrecReadLog rlog;
  rlog.set_dedup(true);
  std::set<std::size_t> hashes;
  for (std::size_t i = 0; i < 8; ++i) {
    hashes.insert(stm::OrecReadLog::orec_hash(&packed.at(i)));
    rlog.push(&packed.at(i));
  }
  EXPECT_EQ(hashes.size(), 8u);
  EXPECT_EQ(rlog.size(), 8u);
  rlog.clear();
}

TEST(NumaPlacement, AllocateDegradesHonestly) {
  EXPECT_GE(numa_node_count(), 1);
  for (NumaMode mode :
       {NumaMode::kNone, NumaMode::kInterleave, NumaMode::kLocal}) {
    NumaBuffer buf = numa_allocate(1 << 14, mode);
    ASSERT_NE(buf.get(), nullptr);
    EXPECT_GE(buf.bytes(), std::size_t{1} << 14);
    // The memory is usable regardless of whether a kernel policy landed.
    auto* words = static_cast<std::uint64_t*>(buf.get());
    for (std::size_t i = 0; i < (1u << 14) / 8; ++i) words[i] = i;
    EXPECT_EQ(words[100], 100u);
    // policy_applied is an honest flag: it can only be true when there is
    // more than one node to place across (and never for kNone).
    if (buf.policy_applied()) {
      EXPECT_GT(numa_node_count(), 1);
      EXPECT_NE(mode, NumaMode::kNone);
    }
  }
  NumaMode parsed{};
  EXPECT_TRUE(numa_mode_from_string("interleave", &parsed));
  EXPECT_EQ(parsed, NumaMode::kInterleave);
  EXPECT_FALSE(numa_mode_from_string("remote", &parsed));
}

TEST(NumaPlacement, TableReportsItsPlacement) {
  OrecTableConfig cfg;
  cfg.size = 128;
  cfg.numa = NumaMode::kInterleave;
  OrecTable table(cfg);
  EXPECT_EQ(table.numa_mode(), NumaMode::kInterleave);
  if (numa_node_count() <= 1) {
    EXPECT_FALSE(table.numa_policy_applied());  // nothing to interleave
  }
}

// Real-thread smoke over the knob matrix: exact counters under concurrent
// increments, including the stripe-sharing configurations where every
// conflict is a false one the engine must still resolve correctly.
TEST(GranularityStress, CountersStayExactAcrossTheKnobMatrix) {
  for (OrecLayout layout : kLayouts) {
    for (unsigned shift : {3u, 6u}) {
      stm::EngineConfig cfg;
      cfg.orec_granularity_shift = shift;
      cfg.orec_layout = layout;
      auto engine = stm::make_engine(stm::Algo::kOrecEagerRedo, cfg);
      constexpr unsigned kThreads = 3;
      constexpr unsigned kTxs = 400;
      // Adjacent words: disjoint stripes at g3, one shared stripe at g6.
      alignas(64) stm::Word cells[kThreads] = {};
      std::vector<std::thread> pool;
      for (unsigned i = 0; i < kThreads; ++i) {
        pool.emplace_back([&, i] {
          stm::TxThread tx;
          for (unsigned j = 0; j < kTxs; ++j) {
            stm::atomically(*engine, tx, [&](stm::TxThread& t) {
              engine->write(t, &cells[i], engine->read(t, &cells[i]) + 1);
            });
          }
        });
      }
      for (std::thread& t : pool) t.join();
      for (unsigned i = 0; i < kThreads; ++i) {
        EXPECT_EQ(cells[i], kTxs)
            << stm::to_string(layout) << " g" << shift;
      }
    }
  }
}

}  // namespace
}  // namespace votm

// --- votm-check: knob-matrix exploration (harness builds only) -------------

#include "check/sched_point.hpp"

#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS

#include "check/explore.hpp"
#include "check/scenarios.hpp"

namespace votm::check {
namespace {

using stm::OrecLayout;

constexpr stm::Algo kOrecAlgos[] = {
    stm::Algo::kOrecEagerRedo,
    stm::Algo::kOrecLazy,
    stm::Algo::kOrecEagerUndo,
};

// Coarse stripes change the SHAPE of the explored conflict graph (distinct
// variables collide), not just its weights; opacity must hold across the
// whole knob matrix on every orec engine.
TEST(GranularityWalks, OpacityHoldsAcrossKnobMatrix) {
  for (stm::Algo algo : kOrecAlgos) {
    for (OrecLayout layout : {OrecLayout::kPadded, OrecLayout::kPacked}) {
      for (unsigned shift : {3u, 6u}) {
        StmRandomConfig cfg;
        cfg.algo = algo;
        cfg.orec_granularity_shift = shift;
        cfg.orec_layout = layout;
        cfg.reread_pct = 30;  // drive the dedup under stripe sharing too
        StmRandomScenario scenario(cfg);
        const auto report = explore_random(scenario, 15, 0x6A51);
        EXPECT_TRUE(report.clean()) << report.repro;
        EXPECT_EQ(report.runs, 15u);
      }
    }
  }
}

TEST(GranularityWalks, SnapshotConsistencyHoldsUnderStripeSharing) {
  for (stm::Algo algo : kOrecAlgos) {
    for (OrecLayout layout : {OrecLayout::kPadded, OrecLayout::kPacked}) {
      StmSnapshotConfig cfg;
      cfg.algo = algo;
      cfg.orec_granularity_shift = 6;  // both vars share one stripe
      cfg.orec_layout = layout;
      StmSnapshotScenario scenario(cfg);
      const auto report = explore_random(scenario, 15, 0x6A52);
      EXPECT_TRUE(report.clean()) << report.repro;
    }
  }
}

// The MVCC rings index by the table's stripe map; the GV6 clock feeds its
// horizon. Both composed with coarse stripes, under exploration.
TEST(GranularityWalks, MvccAndGv6ComposeWithCoarseStripes) {
  StmRandomConfig cfg;
  cfg.algo = stm::Algo::kOrecEagerRedo;
  cfg.orec_granularity_shift = 6;
  cfg.mvcc = true;
  StmRandomScenario mvcc_scenario(cfg);
  const auto mvcc_report = explore_random(mvcc_scenario, 20, 0x6A53);
  EXPECT_TRUE(mvcc_report.clean()) << mvcc_report.repro;

  StmSnapshotConfig snap;
  snap.algo = stm::Algo::kOrecLazy;
  snap.orec_granularity_shift = 6;
  snap.orec_layout = OrecLayout::kPacked;
  snap.clock_policy = stm::ClockPolicy::kGv6;
  StmSnapshotScenario snap_scenario(snap);
  const auto snap_report = explore_random(snap_scenario, 20, 0x6A54);
  EXPECT_TRUE(snap_report.clean()) << snap_report.repro;
}

}  // namespace
}  // namespace votm::check

#endif  // VOTM_SCHED_POINTS
