// Tests of the Intruder substrate: detector correctness, generator
// round-trip properties, the transactional queue and dictionary, and the
// end-to-end pipeline invariants (every flow reassembled byte-exactly,
// every injected attack detected, nothing else flagged).
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <thread>

#include "intruder/intruder.hpp"

namespace votm::intruder {
namespace {

// ---------------- Detector -------------------------------------------------

TEST(DetectorTest, FindsSignatureAnywhere) {
  Detector det;
  const std::string& sig = det.signatures()[0];
  for (std::size_t pad_front : {0u, 1u, 7u, 100u}) {
    std::string hay(pad_front, 'x');
    hay += sig;
    hay += std::string(13, 'y');
    EXPECT_TRUE(det.scan(reinterpret_cast<const std::uint8_t*>(hay.data()),
                         hay.size()))
        << "pad " << pad_front;
  }
}

TEST(DetectorTest, CleanPayloadNotFlagged) {
  Detector det;
  std::string hay(500, 'a');
  for (std::size_t i = 0; i < hay.size(); ++i) {
    hay[i] = static_cast<char>('a' + i % 26);
  }
  EXPECT_FALSE(det.scan(reinterpret_cast<const std::uint8_t*>(hay.data()),
                        hay.size()));
}

TEST(DetectorTest, ShortPayloadHandled) {
  Detector det;
  const std::uint8_t byte = 'q';
  EXPECT_FALSE(det.scan(&byte, 1));
  EXPECT_FALSE(det.scan(&byte, 0));
}

TEST(DetectorTest, AllDefaultSignaturesDetectable) {
  Detector det;
  for (const std::string& sig : det.signatures()) {
    std::string hay = "prefix" + sig + "suffix";
    EXPECT_TRUE(det.scan(reinterpret_cast<const std::uint8_t*>(hay.data()),
                         hay.size()))
        << sig;
  }
}

TEST(DetectorTest, SignaturesContainNonLowercaseByte) {
  // The generator fills non-attack flows with bytes in [a-z]; every default
  // signature must contain at least one byte outside that range so clean
  // flows can never be flagged.
  for (const std::string& sig : Detector::default_signatures()) {
    bool has_non_lower = false;
    for (char ch : sig) has_non_lower |= (ch < 'a' || ch > 'z');
    EXPECT_TRUE(has_non_lower) << sig;
  }
}

// ---------------- Generator ------------------------------------------------

GeneratorConfig small_gen(std::uint64_t flows = 200, std::uint64_t seed = 1) {
  GeneratorConfig g;
  g.num_flows = flows;
  g.max_length = 64;
  g.attack_percent = 10;
  g.seed = seed;
  return g;
}

TEST(GeneratorTest, FragmentsReassembleToOriginal) {
  Detector det;
  const GeneratedStream s = generate_stream(small_gen(), det);
  // Group fragments per flow and rebuild.
  std::map<std::uint64_t, std::vector<const Packet*>> by_flow;
  for (const auto& p : s.packets) by_flow[p->flow_id].push_back(p.get());
  ASSERT_EQ(by_flow.size(), s.flows.size());
  for (const Flow& flow : s.flows) {
    auto& frags = by_flow[flow.id];
    std::vector<std::uint8_t> rebuilt(flow.data.size(), 0);
    std::size_t bytes = 0;
    for (const Packet* p : frags) {
      ASSERT_LE(p->offset + p->payload.size(), rebuilt.size());
      std::memcpy(rebuilt.data() + p->offset, p->payload.data(),
                  p->payload.size());
      bytes += p->payload.size();
      EXPECT_EQ(p->num_fragments, frags.size());
    }
    EXPECT_EQ(bytes, flow.data.size());
    EXPECT_EQ(rebuilt, flow.data);
  }
}

TEST(GeneratorTest, AttackRateApproximatesParameter) {
  Detector det;
  const GeneratedStream s = generate_stream(small_gen(5000, 3), det);
  EXPECT_NEAR(static_cast<double>(s.attack_flows), 500.0, 120.0);
  // Every attack flow actually contains a signature; no clean flow does.
  for (const Flow& f : s.flows) {
    EXPECT_EQ(det.scan(f.data.data(), f.data.size()), f.is_attack) << f.id;
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  Detector det;
  const GeneratedStream a = generate_stream(small_gen(100, 9), det);
  const GeneratedStream b = generate_stream(small_gen(100, 9), det);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.shuffled.size(); ++i) {
    EXPECT_EQ(a.shuffled[i]->flow_id, b.shuffled[i]->flow_id);
    EXPECT_EQ(a.shuffled[i]->fragment_id, b.shuffled[i]->fragment_id);
    EXPECT_EQ(a.shuffled[i]->payload, b.shuffled[i]->payload);
  }
}

TEST(GeneratorTest, FragmentSizesRespectBound) {
  Detector det;
  GeneratorConfig g = small_gen(300, 5);
  g.max_fragment_bytes = 8;
  const GeneratedStream s = generate_stream(g, det);
  for (const auto& p : s.packets) {
    EXPECT_GE(p->payload.size(), 1u);
    EXPECT_LE(p->payload.size(), 8u);
  }
}

// ---------------- TxQueue ---------------------------------------------------

core::ViewConfig queue_view_config() {
  core::ViewConfig vc;
  vc.algo = stm::Algo::kNOrec;
  vc.max_threads = 8;
  vc.rac = core::RacMode::kDisabled;
  vc.initial_bytes = 1 << 20;
  return vc;
}

TEST(TxQueueTest, FifoOrderSingleThread) {
  core::View view(queue_view_config());
  TxQueue q(view, 64);
  view.execute([&] {
    for (stm::Word v = 1; v <= 10; ++v) EXPECT_TRUE(q.push(v));
  });
  view.execute([&] {
    for (stm::Word v = 1; v <= 10; ++v) EXPECT_EQ(q.pop(), v);
    EXPECT_EQ(q.pop(), 0u);  // empty
  });
}

TEST(TxQueueTest, FullQueueRejectsPush) {
  core::View view(queue_view_config());
  TxQueue q(view, 4);  // rounds to 4
  view.execute([&] {
    for (stm::Word v = 1; v <= q.capacity(); ++v) EXPECT_TRUE(q.push(v));
    EXPECT_FALSE(q.push(999));
  });
}

TEST(TxQueueTest, PrefillThenConcurrentDrainPopsEachElementOnce) {
  core::View view(queue_view_config());
  constexpr std::size_t kItems = 2000;
  TxQueue q(view, kItems);
  std::vector<stm::Word> values;
  for (std::size_t i = 1; i <= kItems; ++i) values.push_back(i);
  q.prefill(values);

  constexpr unsigned kThreads = 6;
  std::vector<std::vector<stm::Word>> popped(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (;;) {
        stm::Word v = 0;
        view.execute([&] { v = q.pop(); });
        if (v == 0) break;
        popped[t].push_back(v);
      }
    });
  }
  for (auto& th : pool) th.join();

  std::vector<bool> seen(kItems + 1, false);
  std::size_t total = 0;
  for (const auto& vec : popped) {
    for (stm::Word v : vec) {
      ASSERT_LE(v, kItems);
      EXPECT_FALSE(seen[v]) << "duplicate pop of " << v;
      seen[v] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, kItems);
}

TEST(TxQueueTest, WrapsAroundTheRing) {
  core::View view(queue_view_config());
  TxQueue q(view, 8);
  // Push/pop more than the capacity so indices wrap.
  view.execute([&] {
    for (stm::Word v = 1; v <= 50; ++v) {
      ASSERT_TRUE(q.push(v));
      ASSERT_EQ(q.pop(), v);
    }
    EXPECT_EQ(q.size(), 0u);
  });
}

// ---------------- TxDictionary ----------------------------------------------

TEST(TxDictionaryTest, SingleFlowCompletes) {
  core::View view(queue_view_config());
  TxDictionary dict(view, 16);
  Packet p1{.flow_id = 7, .fragment_id = 0, .num_fragments = 2, .offset = 0,
            .payload = {'a', 'b'}};
  Packet p2{.flow_id = 7, .fragment_id = 1, .num_fragments = 2, .offset = 2,
            .payload = {'c'}};
  const Packet* out[4] = {};
  unsigned n = 99;
  view.execute([&] { n = dict.insert(&p1, out, 4); });
  EXPECT_EQ(n, 0u);
  view.execute([&] { n = dict.insert(&p2, out, 4); });
  ASSERT_EQ(n, 2u);
  EXPECT_EQ(out[0], &p1);  // ordered by fragment_id
  EXPECT_EQ(out[1], &p2);
  view.execute([&] { EXPECT_EQ(dict.resident_flows(), 0u); });
}

TEST(TxDictionaryTest, OutOfOrderFragments) {
  core::View view(queue_view_config());
  TxDictionary dict(view, 16);
  Packet frags[3];
  for (std::uint32_t i = 0; i < 3; ++i) {
    frags[i] = Packet{.flow_id = 1, .fragment_id = i, .num_fragments = 3,
                      .offset = i, .payload = {static_cast<std::uint8_t>(i)}};
  }
  const Packet* out[4] = {};
  unsigned n = 0;
  view.execute([&] { n = dict.insert(&frags[2], out, 4); });
  EXPECT_EQ(n, 0u);
  view.execute([&] { n = dict.insert(&frags[0], out, 4); });
  EXPECT_EQ(n, 0u);
  view.execute([&] { n = dict.insert(&frags[1], out, 4); });
  ASSERT_EQ(n, 3u);
  for (std::uint32_t i = 0; i < 3; ++i) EXPECT_EQ(out[i], &frags[i]);
}

TEST(TxDictionaryTest, ManyFlowsShareBucketsViaChaining) {
  core::View view(queue_view_config());
  TxDictionary dict(view, 4);  // tiny bucket array forces chains
  constexpr std::uint64_t kFlows = 64;
  std::vector<Packet> packets;
  packets.reserve(kFlows);
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    packets.push_back(Packet{.flow_id = f, .fragment_id = 0, .num_fragments = 2,
                             .offset = 0, .payload = {1}});
  }
  const Packet* out[4] = {};
  for (auto& p : packets) {
    view.execute([&] { EXPECT_EQ(dict.insert(&p, out, 4), 0u); });
  }
  view.execute([&] { EXPECT_EQ(dict.resident_flows(), kFlows); });
  // Complete them all.
  std::vector<Packet> second;
  second.reserve(kFlows);
  for (std::uint64_t f = 0; f < kFlows; ++f) {
    second.push_back(Packet{.flow_id = f, .fragment_id = 1, .num_fragments = 2,
                            .offset = 1, .payload = {2}});
  }
  for (auto& p : second) {
    unsigned n = 0;
    view.execute([&] { n = dict.insert(&p, out, 4); });
    EXPECT_EQ(n, 2u);
  }
  view.execute([&] { EXPECT_EQ(dict.resident_flows(), 0u); });
}

TEST(TxDictionaryTest, DuplicateFragmentRejected) {
  core::View view(queue_view_config());
  TxDictionary dict(view, 16);
  Packet p{.flow_id = 1, .fragment_id = 0, .num_fragments = 2, .offset = 0,
           .payload = {1}};
  const Packet* out[4] = {};
  view.execute([&] { dict.insert(&p, out, 4); });
  EXPECT_THROW(view.execute([&] { dict.insert(&p, out, 4); }),
               std::logic_error);
}

// ---------------- End-to-end pipeline ---------------------------------------

struct PipelineCase {
  Layout layout;
  stm::Algo algo;
  core::RacMode rac;
  const char* name;
};

class IntruderPipeline : public ::testing::TestWithParam<PipelineCase> {};

TEST_P(IntruderPipeline, AllFlowsReassembledAllAttacksDetected) {
  const PipelineCase& c = GetParam();
  IntruderConfig ic;
  ic.gen = small_gen(400, 11);
  ic.layout = c.layout;
  ic.n_threads = 4;
  ic.algo = c.algo;
  ic.rac = c.rac;
  if (c.rac == core::RacMode::kFixed) {
    ic.fixed_quotas.assign(c.layout == Layout::kSingleView ? 1 : 2, 2);
  }
  IntruderWorld world(ic);
  const IntruderReport report = world.run();

  EXPECT_FALSE(report.livelocked);
  EXPECT_EQ(report.flows_completed, ic.gen.num_flows);
  EXPECT_EQ(report.attacks_detected, report.attacks_expected);
  EXPECT_EQ(report.packets_processed, world.stream().shuffled.size());
  EXPECT_EQ(report.views.size(), c.layout == Layout::kSingleView ? 1u : 2u);
  EXPECT_GT(report.total.commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IntruderPipeline,
    ::testing::Values(
        PipelineCase{Layout::kMultiView, stm::Algo::kNOrec,
                     core::RacMode::kAdaptive, "multi_norec_adaptive"},
        PipelineCase{Layout::kSingleView, stm::Algo::kNOrec,
                     core::RacMode::kAdaptive, "single_norec_adaptive"},
        PipelineCase{Layout::kMultiView, stm::Algo::kOrecEagerRedo,
                     core::RacMode::kAdaptive, "multi_oer_adaptive"},
        PipelineCase{Layout::kSingleView, stm::Algo::kOrecEagerRedo,
                     core::RacMode::kFixed, "single_oer_fixed2"},
        PipelineCase{Layout::kMultiView, stm::Algo::kNOrec,
                     core::RacMode::kDisabled, "multiTM_norec"},
        PipelineCase{Layout::kSingleView, stm::Algo::kNOrec,
                     core::RacMode::kDisabled, "plainTM_norec"}),
    [](const auto& info) { return info.param.name; });

TEST(IntruderWorldTest, LockModeQuotaOneStillCorrect) {
  IntruderConfig ic;
  ic.gen = small_gen(200, 4);
  ic.layout = Layout::kMultiView;
  ic.n_threads = 4;
  ic.algo = stm::Algo::kOrecEagerRedo;
  ic.rac = core::RacMode::kFixed;
  ic.fixed_quotas = {1, 1};
  IntruderWorld world(ic);
  const IntruderReport report = world.run();
  EXPECT_EQ(report.flows_completed, ic.gen.num_flows);
  EXPECT_EQ(report.attacks_detected, report.attacks_expected);
  EXPECT_EQ(report.total.aborts, 0u);
}

TEST(IntruderWorldTest, SingleThreadBaseline) {
  IntruderConfig ic;
  ic.gen = small_gen(150, 2);
  ic.layout = Layout::kSingleView;
  ic.n_threads = 1;
  ic.algo = stm::Algo::kNOrec;
  ic.rac = core::RacMode::kDisabled;
  IntruderWorld world(ic);
  const IntruderReport report = world.run();
  EXPECT_EQ(report.flows_completed, ic.gen.num_flows);
  EXPECT_EQ(report.attacks_detected, report.attacks_expected);
  EXPECT_EQ(report.total.aborts, 0u);  // no concurrency, no conflicts
}

TEST(IntruderWorldTest, RejectsBadQuotaVector) {
  IntruderConfig ic;
  ic.gen = small_gen(10, 1);
  ic.layout = Layout::kMultiView;
  ic.rac = core::RacMode::kFixed;
  ic.fixed_quotas = {1};  // needs 2
  EXPECT_THROW(IntruderWorld{ic}, std::invalid_argument);
}

}  // namespace
}  // namespace votm::intruder
