// Victim-choice contention management (ctest -L cm; DESIGN.md §20).
//
// Four layers of coverage:
//   * knob sanitization — the factory's clamp-and-count treatment of the
//     cm_policy / karma-cap / window-width knobs (zero, negative, huge and
//     out-of-range-byte inputs), pinned through FactoryStats;
//   * the padded priority-table protocol — publish/read/withdraw, the
//     owner-tag "unknown means baseline" rule, and the yield-demand
//     handshake (racy max, ties favor the incumbent, demands consumed
//     exactly once);
//   * the CmState lifecycle — karma accumulates across the conflict
//     retries of ONE run (handle_abort keeps it) and resets at every
//     terminal edge: commit (View::exit), a user exception
//     (abort_for_exception), and a deadline refusing entry;
//   * schedule-exploration campaigns — CmFairnessScenario across all
//     victim-choice policies and the four contending engines (the seeded
//     victim must commit within its fairness bound), the kCmVictimChoice
//     priority-inversion mutation (the bound oracle must CATCH it, with a
//     deterministically replayable schedule), and opacity under every
//     policy (victim choice decides who retries, never what a committed
//     history may read).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/access.hpp"
#include "core/thread_ctx.hpp"
#include "core/view.hpp"
#include "stm/cm_policy.hpp"
#include "stm/factory.hpp"

namespace votm {
namespace {

using stm::CmPolicy;

// ---------------------------------------------------------------------------
// Knob sanitization (stm/factory.cpp)
// ---------------------------------------------------------------------------

TEST(CmSanitize, InvalidPolicyByteFallsBackToAbortSelf) {
  const auto before = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_cm_policy(static_cast<CmPolicy>(0xEE)),
            CmPolicy::kAbortSelf);
  // Every in-range byte passes through untouched.
  for (std::uint8_t b = 0; b < stm::kCmPolicyCount; ++b) {
    EXPECT_EQ(stm::sanitized_cm_policy(static_cast<CmPolicy>(b)),
              static_cast<CmPolicy>(b));
  }
  const auto after = stm::factory_stats();
  EXPECT_EQ(after.cm_policy_fallbacks, before.cm_policy_fallbacks + 1);
}

TEST(CmSanitize, KarmaCapClampsZeroNegativeAndHuge) {
  const auto before = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_cm_karma_cap(0), stm::kCmKarmaCapMin);
  EXPECT_EQ(stm::sanitized_cm_karma_cap(-7), stm::kCmKarmaCapMin);
  EXPECT_EQ(stm::sanitized_cm_karma_cap(std::numeric_limits<std::int64_t>::max()),
            stm::kCmKarmaCapMax);
  EXPECT_EQ(stm::sanitized_cm_karma_cap(1), std::uint64_t{1});
  EXPECT_EQ(
      stm::sanitized_cm_karma_cap(static_cast<std::int64_t>(stm::kCmKarmaCapMax)),
      stm::kCmKarmaCapMax);
  const auto after = stm::factory_stats();
  EXPECT_EQ(after.cm_karma_clamps, before.cm_karma_clamps + 3);
}

TEST(CmSanitize, WindowWidthClampsIntoRange) {
  const auto before = stm::factory_stats();
  EXPECT_EQ(stm::sanitized_cm_window_size(0), stm::kCmWindowMin);
  EXPECT_EQ(stm::sanitized_cm_window_size(1), stm::kCmWindowMin);
  EXPECT_EQ(stm::sanitized_cm_window_size(-3), stm::kCmWindowMin);
  EXPECT_EQ(stm::sanitized_cm_window_size(std::int64_t{1} << 40),
            stm::kCmWindowMax);
  EXPECT_EQ(stm::sanitized_cm_window_size(stm::kCmWindowDefault),
            stm::kCmWindowDefault);
  const auto after = stm::factory_stats();
  EXPECT_EQ(after.cm_window_clamps, before.cm_window_clamps + 4);
}

TEST(CmSanitize, RuntimeBundleAndFactoryConstruction) {
  stm::EngineConfig bad;
  bad.cm_policy = static_cast<CmPolicy>(0x7F);
  bad.cm_karma_cap = -1;
  bad.cm_window_size = 0;
  const stm::CmRuntime rt = stm::sanitized_cm_runtime(bad);
  EXPECT_EQ(rt.policy, CmPolicy::kAbortSelf);
  EXPECT_EQ(rt.karma_cap, stm::kCmKarmaCapMin);
  EXPECT_EQ(rt.window_size, stm::kCmWindowMin);
  // The repaired config still yields a working engine, never a throw.
  auto engine = stm::make_engine(stm::Algo::kOrecEagerRedo, bad);
  ASSERT_NE(engine, nullptr);

  stm::EngineConfig good;
  good.cm_policy = CmPolicy::kWindowGreedy;
  good.cm_window_size = 16;
  const stm::CmRuntime grt = stm::sanitized_cm_runtime(good);
  EXPECT_EQ(grt.policy, CmPolicy::kWindowGreedy);
  EXPECT_EQ(grt.window_size, 16u);
  EXPECT_EQ(grt.karma_cap, stm::kCmKarmaCapDefault);
}

TEST(CmSanitize, PolicyFromStringAcceptsAliasesAndRejectsGarbage) {
  CmPolicy p = CmPolicy::kAbortSelf;
  EXPECT_TRUE(stm::cm_policy_from_string("karma", &p));
  EXPECT_EQ(p, CmPolicy::kKarma);
  EXPECT_TRUE(stm::cm_policy_from_string("greedy", &p));
  EXPECT_EQ(p, CmPolicy::kTimestampGreedy);
  EXPECT_TRUE(stm::cm_policy_from_string("Window-Greedy", &p));
  EXPECT_EQ(p, CmPolicy::kWindowGreedy);
  EXPECT_TRUE(stm::cm_policy_from_string("younger", &p));
  EXPECT_EQ(p, CmPolicy::kAbortYounger);
  EXPECT_TRUE(stm::cm_policy_from_string("self", &p));
  EXPECT_EQ(p, CmPolicy::kAbortSelf);
  EXPECT_FALSE(stm::cm_policy_from_string("fair-ish", &p));
  // Round trip through to_string for every policy.
  for (std::uint8_t b = 0; b < stm::kCmPolicyCount; ++b) {
    const auto want = static_cast<CmPolicy>(b);
    CmPolicy got = CmPolicy::kAbortSelf;
    EXPECT_TRUE(stm::cm_policy_from_string(stm::to_string(want), &got));
    EXPECT_EQ(got, want);
  }
}

// ---------------------------------------------------------------------------
// Priority-table protocol (stm/cm_policy.hpp)
// ---------------------------------------------------------------------------

TEST(CmPriorityTable, PublishReadWithdraw) {
  auto& table = stm::CmPriorityTable::instance();
  table.reset();
  int a = 0, b = 0;
  std::uint64_t prio = 0;
  EXPECT_FALSE(table.read(&a, &prio)) << "unpublished must read as unknown";
  table.publish(&a, 42);
  ASSERT_TRUE(table.read(&a, &prio));
  EXPECT_EQ(prio, 42u);
  table.publish(&a, 43);  // re-publish overwrites in place
  ASSERT_TRUE(table.read(&a, &prio));
  EXPECT_EQ(prio, 43u);
  table.publish(&b, 7);  // an unrelated entry does not disturb the first
  ASSERT_TRUE(table.read(&a, &prio));
  EXPECT_EQ(prio, 43u);
  table.withdraw(&a);
  EXPECT_FALSE(table.read(&a, &prio))
      << "a withdrawn entry must read as unknown, not as a stale rank";
  table.reset();
}

TEST(CmPriorityTable, YieldDemandHandshake) {
  auto& table = stm::CmPriorityTable::instance();
  table.reset();
  int a = 0;
  table.publish(&a, 5);
  // A demand at or below the owner's rank never kills it (ties favor the
  // incumbent — no mutual-kill cycles), but the demand is still consumed.
  table.request_yield(&a, 5);
  EXPECT_FALSE(table.take_yield(&a, 5));
  EXPECT_FALSE(table.take_yield(&a, 5)) << "demand must be consumed";
  // A strictly higher demand fires exactly once.
  table.request_yield(&a, 9);
  EXPECT_TRUE(table.take_yield(&a, 5));
  EXPECT_FALSE(table.take_yield(&a, 5));
  // Racy max: the strongest concurrent demand wins.
  table.request_yield(&a, 3);
  table.request_yield(&a, 9);
  table.request_yield(&a, 6);
  EXPECT_TRUE(table.take_yield(&a, 8));
  // clear_yield wipes a pending demand (fresh-run protection).
  table.request_yield(&a, 9);
  table.clear_yield(&a);
  EXPECT_FALSE(table.take_yield(&a, 5));
  // Demands aimed at an unpublished owner are dropped at the tag check.
  int stranger = 0;
  table.request_yield(&stranger, 9);
  EXPECT_FALSE(table.take_yield(&stranger, 0));
  table.reset();
}

TEST(CmState, EndRunResetsEverythingButTheRngStream) {
  stm::CmState st;
  st.karma = 10;
  st.first_age = 3;
  st.window_slot = 2;
  st.priority = 99;
  const std::uint64_t rng_before = st.rng;
  (void)st.draw(1);  // the stream itself must advance...
  EXPECT_NE(st.rng, rng_before);
  const std::uint64_t rng_mid = st.rng;
  st.end_run();
  EXPECT_EQ(st.karma, 0u);
  EXPECT_EQ(st.first_age, 0u);
  EXPECT_EQ(st.window_slot, 0u);
  EXPECT_EQ(st.priority, 0u);
  // ...and survive end_run: re-seeding it would make consecutive runs of
  // an identical transaction draw identical window slots forever.
  EXPECT_EQ(st.rng, rng_mid);
  // Same state, same salt => same draw (replay determinism).
  stm::CmState x, y;
  EXPECT_EQ(x.draw(5), y.draw(5));
  EXPECT_NE(x.draw(5), x.draw(6));
}

// ---------------------------------------------------------------------------
// CmState lifecycle through the View layer
// ---------------------------------------------------------------------------

core::ViewConfig small_view(stm::Algo algo, CmPolicy policy) {
  core::ViewConfig vc;
  vc.algo = algo;
  vc.max_threads = 2;
  vc.rac = core::RacMode::kFixed;
  vc.fixed_quota = 2;  // stay transactional (quota 1 is lock mode)
  vc.initial_bytes = 1 << 16;
  vc.engine.cm_policy = policy;
  return vc;
}

TEST(CmLifecycle, CommitResetsKarmaOnExit) {
  core::View view(small_view(stm::Algo::kOrecEagerRedo, CmPolicy::kKarma));
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  stm::TxThread& tx = core::thread_ctx().tx;
  view.execute([&] {
    // Simulate karma accumulated by earlier conflict retries of this run.
    tx.cm.karma = 7;
    tx.cm.priority = 7;
    core::vwrite<stm::Word>(cell, 1);
  });
  EXPECT_EQ(tx.cm.karma, 0u) << "View::exit must end the run";
  EXPECT_EQ(tx.cm.priority, 0u);
}

TEST(CmLifecycle, UserExceptionResetsKarma) {
  core::View view(small_view(stm::Algo::kOrecEagerRedo, CmPolicy::kKarma));
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  stm::TxThread& tx = core::thread_ctx().tx;
  struct Boom {};
  EXPECT_THROW(view.execute([&] {
                 tx.cm.karma = 5;
                 core::vwrite<stm::Word>(cell, 2);
                 throw Boom{};
               }),
               Boom);
  EXPECT_EQ(tx.cm.karma, 0u)
      << "abort_for_exception must not leak priority into the next run";
  EXPECT_EQ(tx.cm.priority, 0u);
}

TEST(CmLifecycle, RefusedDeadlineEntryResetsKarma) {
  core::View view(small_view(stm::Algo::kOrecEagerRedo, CmPolicy::kKarma));
  stm::TxThread& tx = core::thread_ctx().tx;
  tx.cm.karma = 9;
  tx.cm.priority = 9;
  bool ran = false;
  EXPECT_THROW(
      view.run_until(Deadline::after(std::chrono::nanoseconds{0}),
                     [&] { ran = true; }),
      stm::DeadlineExceeded);
  EXPECT_FALSE(ran);
  EXPECT_EQ(tx.cm.karma, 0u)
      << "a budget failure must not arm the thread's next unrelated run";
  EXPECT_EQ(tx.cm.priority, 0u);
}

}  // namespace
}  // namespace votm

// ---------------------------------------------------------------------------
// Fault-driven retry persistence + exploration campaigns (need the check
// harness; compiled to a skip otherwise, like tests/test_fault.cpp).
// ---------------------------------------------------------------------------

#include "check/sched_point.hpp"

#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS

#include "check/explore.hpp"
#include "check/fault.hpp"
#include "check/scenarios.hpp"

namespace votm::check {
namespace {

using stm::CmPolicy;

// Karma must SURVIVE handle_abort: it is the accumulator that makes the
// policy fair across the retries of one run. A single injected commit-tail
// loss forces exactly one retry; the second attempt must see the karma the
// first one earned, and the commit must still reset it.
TEST(CmLifecycle, KarmaPersistsAcrossConflictRetries) {
  core::View view(
      votm::small_view(stm::Algo::kOrecEagerRedo, CmPolicy::kKarma));
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  stm::TxThread& tx = core::thread_ctx().tx;
  FaultPlan one;
  one.fire = 1;
  FaultGuard guard(FaultSite::kOrecEagerRedoCommitTail, one);
  unsigned attempts = 0;
  std::uint64_t karma_on_retry = 0;
  view.execute([&] {
    if (++attempts == 2) karma_on_retry = tx.cm.karma;
    core::vwrite<stm::Word>(cell, attempts);
  });
  ASSERT_EQ(attempts, 2u) << "the injected loss must force one retry";
  EXPECT_GT(karma_on_retry, 0u)
      << "handle_abort wiped the karma the aborted attempt earned";
  EXPECT_EQ(tx.cm.karma, 0u) << "commit must still end the run";
}

constexpr stm::Algo kCmEngines[] = {
    stm::Algo::kOrecEagerRedo,
    stm::Algo::kOrecLazy,
    stm::Algo::kOrecEagerUndo,
    stm::Algo::kNOrec,
};

constexpr CmPolicy kVictimPolicies[] = {
    CmPolicy::kAbortYounger,
    CmPolicy::kKarma,
    CmPolicy::kTimestampGreedy,
    CmPolicy::kWindowGreedy,
};

// Fairness: a victim seeded with losses must commit within its bound under
// every victim-choice policy on every contending engine — and the seeding
// fault must actually have fired (campaign-level vacuity).
TEST(CmFairness, PoliciesHoldTheBoundAcrossEngines) {
  for (const stm::Algo algo : kCmEngines) {
    for (const CmPolicy policy : kVictimPolicies) {
      CmFairnessConfig cfg;
      cfg.algo = algo;
      cfg.cm_policy = policy;
      CmFairnessScenario scenario(cfg);
      const auto report = explore_random(scenario, 20, 0xC3A1);
      EXPECT_TRUE(report.clean())
          << stm::to_string(algo) << "/" << stm::to_string(policy)
          << " :: " << report.repro;
      EXPECT_GT(scenario.seed_triggers(), 0u)
          << "vacuous campaign: the seeding fault never fired for "
          << stm::to_string(algo) << "/" << stm::to_string(policy);
    }
  }
}

// The baseline has no bound to defend, but its books must still balance
// while the seeded victim fights through unaided.
TEST(CmFairness, AbortSelfBaselineKeepsItsBooks) {
  CmFairnessConfig cfg;
  cfg.cm_policy = CmPolicy::kAbortSelf;
  CmFairnessScenario scenario(cfg);
  const auto report = explore_random(scenario, 20, 0xC3A2);
  EXPECT_TRUE(report.clean()) << report.repro;
  EXPECT_GT(scenario.seed_triggers(), 0u);
}

// Mutation: the victim's victim-choice decisions collapse to baseline
// (kCmVictimChoice, marked on the victim). The fairness bound must CATCH
// the inversion with a deterministically replayable schedule — and the
// identical configuration WITHOUT the mutation must survive the same
// exploration budget clean, so the detection is the mutation's doing, not
// a trigger-happy bound.
TEST(CmFairness, PriorityInversionIsCaughtAndReplayable) {
  CmFairnessConfig cfg;
  cfg.algo = stm::Algo::kOrecEagerRedo;
  cfg.cm_policy = CmPolicy::kKarma;
  cfg.peer_rounds = 12;
  cfg.peer_pad_reads = 3;

  CmFairnessConfig control = cfg;
  CmFairnessScenario clean_scenario(control);
  const auto clean_report = explore_random(clean_scenario, 150, 0x1C4);
  EXPECT_TRUE(clean_report.clean())
      << "the bound fired without the mutation: " << clean_report.repro;

  cfg.invert = true;
  CmFairnessScenario scenario(cfg);
  const auto report = explore_random(scenario, 400, 0x1C4);
  ASSERT_FALSE(report.clean())
      << "priority-inversion mutant survived " << report.runs << " schedules";
  EXPECT_GT(scenario.invert_triggers(), 0u);
  EXPECT_NE(report.repro.find("votm-check repro:"), std::string::npos);
  ASSERT_FALSE(report.schedule.empty());

  const auto replay = replay_schedule(scenario, report.schedule);
  ASSERT_FALSE(replay.clean()) << "replay lost the violation";
  EXPECT_EQ(replay.violation->what, report.violation->what);
}

// Opacity: victim choice decides WHO retries, never what a committed
// history may read. The conflict-heavy random workload must stay opaque
// under every policy, on its own and composed with wait-CM.
TEST(CmOpacity, PoliciesStayOpaqueAcrossEngines) {
  for (const stm::Algo algo : kCmEngines) {
    for (const CmPolicy policy : kVictimPolicies) {
      StmRandomConfig cfg;
      cfg.algo = algo;
      cfg.cm_policy = policy;
      cfg.threads = 3;
      cfg.vars = 2;  // conflict-heavy: everyone fights over two words
      cfg.write_pct = 80;
      StmRandomScenario scenario(cfg);
      const auto report = explore_random(scenario, 20, 0x0C3);
      EXPECT_TRUE(report.clean())
          << stm::to_string(algo) << "/" << stm::to_string(policy)
          << " :: " << report.repro;
    }
  }
}

TEST(CmOpacity, PoliciesComposeWithWaitTimeout) {
  for (const CmPolicy policy : kVictimPolicies) {
    StmRandomConfig cfg;
    cfg.algo = stm::Algo::kOrecEagerRedo;
    cfg.cm_policy = policy;
    cfg.contention_mode = stm::ContentionMode::kWaitTimeout;
    cfg.threads = 3;
    cfg.vars = 2;
    cfg.write_pct = 80;
    StmRandomScenario scenario(cfg);
    const auto report = explore_random(scenario, 25, 0x0C4);
    EXPECT_TRUE(report.clean())
        << "wait+" << stm::to_string(policy) << " :: " << report.repro;
  }
}

}  // namespace
}  // namespace votm::check

#endif  // VOTM_SCHED_POINTS
