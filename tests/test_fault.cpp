// The systematic fault-injection matrix (ctest -L fault).
//
// Two campaign classes over the FaultInjector's named sites:
//   * availability campaigns — commit-tail conflicts in every abortable
//     engine, spurious admission-CAS losses, a dropped condvar notify: the
//     system must stay CORRECT (oracles clean) and make PROGRESS while the
//     fault fires;
//   * mutation campaigns — the serial-token drop: the scenario oracles
//     must CATCH the injected bug, with a deterministically replayable
//     schedule.
// Every campaign is named by one 64-bit seed (arm_seeded derives the fault
// window from it), so a failure line carries a complete reproducer.
//
// Builds to a trivial skip when the schedule points are compiled out.
#include <gtest/gtest.h>

#include "check/sched_point.hpp"

#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS

#include <atomic>
#include <chrono>
#include <sstream>
#include <thread>

#include "check/explore.hpp"
#include "check/fault.hpp"
#include "check/scenarios.hpp"
#include "rac/admission.hpp"
#include "util/thread_ordinal.hpp"

namespace votm::check {
namespace {

struct EngineSite {
  stm::Algo algo;
  FaultSite site;
};

constexpr EngineSite kCommitTailSites[] = {
    {stm::Algo::kNOrec, FaultSite::kNorecCommitTail},
    {stm::Algo::kTml, FaultSite::kTmlAcquireFail},
    {stm::Algo::kOrecEagerRedo, FaultSite::kOrecEagerRedoCommitTail},
    {stm::Algo::kOrecLazy, FaultSite::kOrecLazyCommitTail},
    {stm::Algo::kOrecEagerUndo, FaultSite::kOrecEagerUndoCommitTail},
};

std::string repro_line(FaultSite site, std::uint64_t seed,
                       const FaultPlan& plan) {
  std::ostringstream os;
  os << "fault campaign: site=" << to_string(site) << " seed=0x" << std::hex
     << seed << std::dec << " (skip=" << plan.skip << " fire=" << plan.fire
     << ")";
  return os.str();
}

TEST(FaultMatrix, SeededPlansAreDeterministic) {
  FaultInjector& inj = FaultInjector::instance();
  const FaultPlan a =
      inj.arm_seeded(FaultSite::kNorecCommitTail, 0xABCD, /*max_skip=*/32);
  const FaultPlan b =
      inj.arm_seeded(FaultSite::kNorecCommitTail, 0xABCD, /*max_skip=*/32);
  inj.disarm_all();
  EXPECT_EQ(a.skip, b.skip);
  EXPECT_LE(a.skip, 32u);
  // Different sites draw independent windows from the same seed.
  const FaultPlan c =
      inj.arm_seeded(FaultSite::kAdmitCasFail, 0xABCD, /*max_skip=*/1u << 20);
  const FaultPlan d = inj.arm_seeded(FaultSite::kOrecLazyCommitTail, 0xABCD,
                                     /*max_skip=*/1u << 20);
  inj.disarm_all();
  EXPECT_NE(c.skip, d.skip);
}

// Availability: a seeded conflict window in every abortable engine's commit
// path. The opacity oracle must stay clean (the conflict is a legal
// outcome) and the site must actually fire (a campaign that never reaches
// its site proves nothing).
TEST(FaultMatrix, CommitTailCampaignAcrossEngines) {
  FaultInjector& inj = FaultInjector::instance();
  for (const EngineSite& es : kCommitTailSites) {
    for (const std::uint64_t seed : {0xFA17u, 0xFA18u}) {
      StmRandomConfig cfg;
      cfg.algo = es.algo;
      StmRandomScenario scenario(cfg);
      const FaultPlan plan =
          inj.arm_seeded(es.site, seed, /*max_skip=*/8, /*fire=*/2);
      const auto report = explore_random(scenario, 30, seed);
      const std::uint64_t triggers = inj.triggers(es.site);
      inj.disarm_all();
      EXPECT_TRUE(report.clean())
          << repro_line(es.site, seed, plan) << " :: " << report.repro;
      EXPECT_GT(triggers, 0u) << repro_line(es.site, seed, plan)
                              << " :: site never fired (vacuous campaign)";
    }
  }
}

// Availability: the admission CAS spuriously loses a seeded window of its
// races. The churn scenario's quota/ledger invariants must hold and every
// worker must still get admitted (the scenario would otherwise report a
// worker exception or hang the bounded exploration).
TEST(FaultMatrix, AdmissionCasFailCampaign) {
  FaultInjector& inj = FaultInjector::instance();
  for (const std::uint64_t seed : {0xCA5u, 0xCA6u}) {
    AdmissionChurnScenario scenario(default_admission_churn(3));
    const FaultPlan plan =
        inj.arm_seeded(FaultSite::kAdmitCasFail, seed, /*max_skip=*/4,
                       /*fire=*/3);
    const auto report = explore_random(scenario, 30, seed);
    const std::uint64_t triggers = inj.triggers(FaultSite::kAdmitCasFail);
    inj.disarm_all();
    EXPECT_TRUE(report.clean())
        << repro_line(FaultSite::kAdmitCasFail, seed, plan)
        << " :: " << report.repro;
    EXPECT_GT(triggers, 0u)
        << repro_line(FaultSite::kAdmitCasFail, seed, plan)
        << " :: site never fired (vacuous campaign)";
  }
}

// Availability: the escalation ladder itself keeps its starvation bound
// while the victim's engine loses every commit — across all six engines
// (CGL has no abort site; the scenario degenerates to a plain commit and
// documents exactly that).
TEST(FaultMatrix, EscalationLadderHoldsAcrossEngines) {
  constexpr stm::Algo kAll[] = {
      stm::Algo::kNOrec,         stm::Algo::kTml,
      stm::Algo::kOrecEagerRedo, stm::Algo::kOrecLazy,
      stm::Algo::kOrecEagerUndo, stm::Algo::kCgl,
  };
  for (stm::Algo algo : kAll) {
    EscalationScenarioConfig cfg;
    cfg.algo = algo;
    cfg.serial_after = 2;
    EscalationScenario scenario(cfg);
    const auto report = explore_random(scenario, 15, 0xE5CA);
    EXPECT_TRUE(report.clean()) << report.repro;
    if (algo != stm::Algo::kCgl) {
      // Campaign-level vacuity: across the 15 schedules, the injected
      // commit-tail loss must have fired at least once. (Per-run it may
      // not: a natural conflict can abort the victim first.)
      EXPECT_GT(scenario.commit_tail_triggers(), 0u)
          << "vacuous campaign for algo " << static_cast<int>(algo);
    }
  }
}

// Wait-based contention management (stm/contention.hpp): a conflict-heavy
// workload under kWaitTimeout across the orec engines and clock policies.
// The opacity oracle must stay clean (waiting never trades correctness for
// progress) and the per-transaction max_attempts loop doubles as the
// starvation-freedom oracle — a wait-CM deadlock or unbounded park would
// exhaust it and fail as a worker error instead of hanging exploration.
StmRandomConfig wait_cm_config(stm::Algo algo, stm::ClockPolicy clock) {
  StmRandomConfig cfg;
  cfg.algo = algo;
  cfg.contention_mode = stm::ContentionMode::kWaitTimeout;
  cfg.clock_policy = clock;
  cfg.threads = 3;
  cfg.vars = 2;          // conflict-heavy: everyone fights over two words
  cfg.write_pct = 80;
  return cfg;
}

constexpr stm::Algo kOrecEngines[] = {
    stm::Algo::kOrecEagerRedo,
    stm::Algo::kOrecLazy,
    stm::Algo::kOrecEagerUndo,
};

TEST(WaitCm, WaitTimeoutStaysOpaqueAcrossEnginesAndClocks) {
  for (const stm::Algo algo : kOrecEngines) {
    for (const stm::ClockPolicy clock :
         {stm::ClockPolicy::kGv1, stm::ClockPolicy::kGv6}) {
      StmRandomScenario scenario(wait_cm_config(algo, clock));
      const auto report = explore_random(scenario, 40, 0x3A17);
      EXPECT_TRUE(report.clean())
          << stm::to_string(algo) << "/" << stm::to_string(clock)
          << " :: " << report.repro;
    }
  }
}

// Availability: the wait times out immediately (a seeded window), forcing
// the kAbortRetry fallback mid-conflict. The fallback is exactly today's
// abort path, so the oracles must stay clean — and the site must fire
// (campaign-level vacuity: the workload is conflict-heavy by construction).
TEST(WaitCm, SeededTimeoutFallbackCampaign) {
  FaultInjector& inj = FaultInjector::instance();
  for (const stm::Algo algo : kOrecEngines) {
    std::uint64_t triggers = 0;
    for (const std::uint64_t seed : {0x71AEu, 0x71AFu}) {
      StmRandomScenario scenario(
          wait_cm_config(algo, stm::ClockPolicy::kGv1));
      const FaultPlan plan =
          inj.arm_seeded(FaultSite::kCmWaitTimeout, seed, /*max_skip=*/4);
      const auto report = explore_random(scenario, 40, seed);
      triggers += inj.triggers(FaultSite::kCmWaitTimeout);
      inj.disarm_all();
      EXPECT_TRUE(report.clean())
          << repro_line(FaultSite::kCmWaitTimeout, seed, plan)
          << " :: " << report.repro;
    }
    // Per-seed the loser may abort on a natural conflict before parking;
    // across both seeds the timeout must have fired at least once.
    EXPECT_GT(triggers, 0u)
        << "vacuous wait-timeout campaign for " << stm::to_string(algo);
  }
}

// Availability: a parked loser never observes the winner's unlock (the
// lost-wakeup torture case). The wait MUST exit through its iteration
// bound and fall back to abort+retry — correctness and progress intact.
TEST(WaitCm, SeededLostWakeupExitsThroughTheBound) {
  FaultInjector& inj = FaultInjector::instance();
  for (const stm::Algo algo : kOrecEngines) {
    std::uint64_t triggers = 0;
    for (const std::uint64_t seed : {0x10A3u, 0x10A4u}) {
      StmRandomScenario scenario(
          wait_cm_config(algo, stm::ClockPolicy::kGv1));
      const FaultPlan plan = inj.arm_seeded(FaultSite::kCmWaitLostWakeup,
                                            seed, /*max_skip=*/4);
      const auto report = explore_random(scenario, 40, seed);
      triggers += inj.triggers(FaultSite::kCmWaitLostWakeup);
      inj.disarm_all();
      EXPECT_TRUE(report.clean())
          << repro_line(FaultSite::kCmWaitLostWakeup, seed, plan)
          << " :: " << report.repro;
    }
    EXPECT_GT(triggers, 0u)
        << "vacuous lost-wakeup campaign for " << stm::to_string(algo);
  }
}

// Mutation: drop the serial token right after the drain hands it over. The
// mutual-exclusion oracles (peers observing a foreign token holder, the
// irrevocable transaction observing concurrent admissions) must catch it,
// and the reproducer must replay deterministically.
TEST(FaultMatrix, SerialTokenDropIsCaughtAndReplayable) {
  EscalationScenarioConfig cfg;
  cfg.algo = stm::Algo::kOrecEagerRedo;
  cfg.serial_after = 2;
  cfg.peer_rounds = 8;
  cfg.drop_serial_token = true;
  EscalationScenario scenario(cfg);

  const auto report = explore_random(scenario, 600, 0xD20);
  ASSERT_FALSE(report.clean())
      << "serial-token-drop mutant survived " << report.runs << " schedules";
  EXPECT_NE(report.repro.find("votm-check repro:"), std::string::npos);
  EXPECT_FALSE(report.schedule.empty());

  const auto replay = replay_schedule(scenario, report.schedule);
  ASSERT_FALSE(replay.clean()) << "replay lost the violation";
  EXPECT_EQ(replay.violation->what, report.violation->what);
}

// Availability: leave_wake drops its notify while a waiter is parked. The
// regression this pins: every admission wait is a wait_for(kDrainPoll)
// re-check loop, so a lost notify (or a spurious wakeup, same loop shape)
// costs one poll period, not a hang. Real threads — the condvar path is
// exactly what the cooperative harness cannot drive.
TEST(LostNotify, ParkedWaiterRecoversWithinPollPeriod) {
  FaultInjector& inj = FaultInjector::instance();
  rac::AdmissionController ac(/*max_threads=*/2, /*initial_quota=*/1,
                              rac::AdmissionImpl::kAtomic,
                              /*spin_budget=*/1);
  ASSERT_EQ(ac.admit(), 1u);  // hold the only slot on this thread

  FaultPlan plan;
  plan.fire = ~std::uint64_t{0};  // every wake this test produces is lost
  inj.arm(FaultSite::kAdmLostNotify, plan);

  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    ac.admit();  // quota 1, slot taken: parks on the condvar
    admitted.store(true, std::memory_order_release);
    ac.leave();
  });
  // Give the waiter time to burn its spin budget and park.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ac.leave();  // leave_wake fires the fault: the notify is dropped

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!admitted.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(admitted.load()) << "waiter hung on a lost notify: the "
                                  "wait_for re-check loop regressed";
  waiter.join();
  inj.disarm_all();
  EXPECT_EQ(ac.admitted(), 0u);
}

// The other three notify paths found by the condvar audit (resume,
// set_quota's gate-reopen, release_serial) carry the same kAdmLostNotify
// site: each must recover through the wait_for(kDrainPoll) re-check loop
// when its notify is dropped, on both gate implementations.
void expect_recovers(std::atomic<bool>& flag, const char* path) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!flag.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(flag.load(std::memory_order_acquire))
      << "waiter hung on a lost " << path
      << " notify: the wait_for re-check loop regressed";
}

TEST(LostNotify, ResumeWaiterRecoversWithinPollPeriod) {
  FaultInjector& inj = FaultInjector::instance();
  for (const rac::AdmissionImpl impl :
       {rac::AdmissionImpl::kAtomic, rac::AdmissionImpl::kMutex}) {
    rac::AdmissionController ac(/*max_threads=*/2, /*initial_quota=*/2, impl,
                                /*spin_budget=*/1);
    ac.pause();
    FaultPlan plan;
    plan.fire = ~std::uint64_t{0};
    inj.arm(FaultSite::kAdmLostNotify, plan);
    std::atomic<bool> admitted{false};
    std::thread waiter([&] {
      ac.admit();  // paused: parks until resume
      admitted.store(true, std::memory_order_release);
      ac.leave();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ac.resume();  // the notify is dropped
    expect_recovers(admitted, "resume");
    waiter.join();
    inj.disarm_all();
    EXPECT_EQ(ac.admitted(), 0u);
  }
}

TEST(LostNotify, QuotaRaiseWaiterRecoversWithinPollPeriod) {
  FaultInjector& inj = FaultInjector::instance();
  for (const rac::AdmissionImpl impl :
       {rac::AdmissionImpl::kAtomic, rac::AdmissionImpl::kMutex}) {
    // Raise between transactional quotas (2 -> 3): applies immediately.
    // (Raising FROM 1 first drains the lock-mode resident, so a holder
    // calling it would deadlock on its own admission — a usage error,
    // not the notify path under test.) max_threads = 3 keeps the gate
    // off the fence-free OPEN mode, so both slots go through the CAS
    // gate and the parked waiter depends on set_quota's broadcast.
    rac::AdmissionController ac(/*max_threads=*/3, /*initial_quota=*/2, impl,
                                /*spin_budget=*/1);
    ASSERT_EQ(ac.admit(), 2u);  // fill both slots (gated path tolerates
    ASSERT_EQ(ac.admit(), 2u);  // multiple admissions from one thread)
    FaultPlan plan;
    plan.fire = ~std::uint64_t{0};
    inj.arm(FaultSite::kAdmLostNotify, plan);
    std::atomic<bool> admitted{false};
    std::thread waiter([&] {
      ac.admit();  // quota full: parks
      admitted.store(true, std::memory_order_release);
      ac.leave();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ac.set_quota(3);  // the raise's notify is dropped
    expect_recovers(admitted, "set_quota");
    waiter.join();
    ac.leave();
    ac.leave();
    inj.disarm_all();
    EXPECT_EQ(ac.admitted(), 0u);
  }
}

TEST(LostNotify, SerialReleaseWaiterRecoversWithinPollPeriod) {
  FaultInjector& inj = FaultInjector::instance();
  for (const rac::AdmissionImpl impl :
       {rac::AdmissionImpl::kAtomic, rac::AdmissionImpl::kMutex}) {
    rac::AdmissionController ac(/*max_threads=*/2, /*initial_quota=*/2, impl,
                                /*spin_budget=*/1);
    ac.acquire_serial();
    FaultPlan plan;
    plan.fire = ~std::uint64_t{0};
    inj.arm(FaultSite::kAdmLostNotify, plan);
    std::atomic<bool> admitted{false};
    std::thread waiter([&] {
      ac.admit();  // gate closed by the token: parks
      admitted.store(true, std::memory_order_release);
      ac.leave();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    ac.release_serial();  // the reopen's notify is dropped
    expect_recovers(admitted, "release_serial");
    waiter.join();
    inj.disarm_all();
    EXPECT_EQ(ac.admitted(), 0u);
  }
}

// Serial-token lifecycle on both gate implementations, plus the mutex
// implementation's token-drop fault (the harness only drives the atomic
// gate, so the mutex impl's site is exercised here with real threads).
TEST(SerialToken, LifecycleOnBothImpls) {
  for (const rac::AdmissionImpl impl :
       {rac::AdmissionImpl::kAtomic, rac::AdmissionImpl::kMutex}) {
    rac::AdmissionController ac(/*max_threads=*/4, /*initial_quota=*/4, impl);
    EXPECT_EQ(ac.serial_holder(), -1);
    ac.acquire_serial();
    EXPECT_EQ(ac.serial_holder(), static_cast<int>(thread_ordinal()));
    EXPECT_EQ(ac.admitted(), 1u);  // the holder self-admits
    unsigned q = 0;
    EXPECT_FALSE(ac.try_admit(&q)) << "serial token must close the gate";
    ac.release_serial();
    EXPECT_EQ(ac.serial_holder(), -1);
    EXPECT_EQ(ac.admitted(), 0u);
    EXPECT_EQ(ac.admit(), 4u);  // gate reopened
    ac.leave();
  }
}

TEST(SerialToken, DrainWaitsForResidentsThenExcludesThem) {
  for (const rac::AdmissionImpl impl :
       {rac::AdmissionImpl::kAtomic, rac::AdmissionImpl::kMutex}) {
    rac::AdmissionController ac(/*max_threads=*/4, /*initial_quota=*/4, impl);
    std::atomic<bool> resident_in{false};
    std::atomic<bool> release_resident{false};
    std::atomic<bool> serial_held{false};
    std::thread resident([&] {
      ac.admit();
      resident_in.store(true, std::memory_order_release);
      while (!release_resident.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ac.leave();
    });
    while (!resident_in.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::atomic<bool> release_serial{false};
    std::thread serial([&] {
      ac.acquire_serial();  // must block until the resident leaves
      serial_held.store(true, std::memory_order_release);
      while (!release_serial.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      ac.release_serial();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(serial_held.load(std::memory_order_acquire))
        << "serial token granted while a resident was still admitted";
    release_resident.store(true, std::memory_order_release);
    resident.join();
    while (!serial_held.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(ac.admitted(), 1u);  // only the holder remains
    release_serial.store(true, std::memory_order_release);
    serial.join();
    EXPECT_EQ(ac.admitted(), 0u);
  }
}

}  // namespace
}  // namespace votm::check

#else  // !VOTM_SCHED_POINTS

TEST(VotmFault, SchedulePointsCompiledOut) {
  GTEST_SKIP() << "configure with -DVOTM_SCHED_POINTS=ON for this suite";
}

#endif  // VOTM_SCHED_POINTS
