// votm-check: deterministic schedule exploration over the STM engines, the
// admission controller and the View layer.
//
// These tests drive the cooperative scheduler (src/check/) through random
// walks, PCT priority schedules and exhaustive enumeration, and assert the
// oracles stay clean on the shipped code. The FaultInjection tests are the
// harness's own mutation check: an injected validation skip in NOrec must
// produce a deterministically replayable opacity violation.
//
// Builds to a trivial skip when the schedule points are compiled out
// (-DVOTM_SCHED_POINTS=OFF).
#include <gtest/gtest.h>

#include "check/sched_point.hpp"

#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS

#include <cstdlib>
#include <string>

#include "check/explore.hpp"
#include "check/fault.hpp"
#include "check/scenarios.hpp"
#include "stm/signature.hpp"

namespace votm::check {
namespace {

constexpr stm::Algo kAllAlgos[] = {
    stm::Algo::kNOrec,         stm::Algo::kTml,
    stm::Algo::kOrecEagerRedo, stm::Algo::kOrecLazy,
    stm::Algo::kOrecEagerUndo,
};

TEST(ScheduleHex, RoundTrip) {
  auto parsed = schedule_from_hex("0123a");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, (std::vector<std::uint8_t>{0, 1, 2, 3, 10}));
  EXPECT_FALSE(schedule_from_hex("01x2").has_value());
}

TEST(Determinism, SameSeedSameSchedule) {
  StmRandomScenario scenario(StmRandomConfig{});
  SchedOptions opts;
  opts.mode = SchedMode::kRandom;
  opts.seed = 0xDEADBEEF;
  const auto a = scenario.run_once(opts);
  const auto b = scenario.run_once(opts);
  ASSERT_FALSE(a.violation.has_value()) << a.violation->what;
  ASSERT_FALSE(b.violation.has_value()) << b.violation->what;
  EXPECT_FALSE(a.sched.choices.empty());
  // Byte-identical schedules: the scenario is a pure function of the seed.
  EXPECT_EQ(a.sched.schedule_hex(), b.sched.schedule_hex());
}

TEST(Determinism, ReplayFollowsRecordedSchedule) {
  StmRandomScenario scenario(StmRandomConfig{});
  SchedOptions opts;
  opts.seed = 7;
  const auto recorded = scenario.run_once(opts);
  ASSERT_FALSE(recorded.violation.has_value()) << recorded.violation->what;
  const auto replay =
      replay_schedule(scenario, recorded.sched.schedule_hex());
  EXPECT_TRUE(replay.clean()) << replay.repro;
  EXPECT_EQ(replay.runs, 1u);
}

TEST(RandomWalks, OpacityHoldsAcrossEngines) {
  for (stm::Algo algo : kAllAlgos) {
    StmRandomConfig cfg;
    cfg.algo = algo;
    StmRandomScenario scenario(cfg);
    const auto report = explore_random(scenario, 40, 0xC0FFEE);
    EXPECT_TRUE(report.clean()) << report.repro;
    EXPECT_EQ(report.runs, 40u);
  }
}

TEST(RandomWalks, SnapshotConsistencyHoldsAcrossEngines) {
  for (stm::Algo algo : kAllAlgos) {
    StmSnapshotConfig cfg;
    cfg.algo = algo;
    StmSnapshotScenario scenario(cfg);
    const auto report = explore_random(scenario, 40, 0xBADC0DE);
    EXPECT_TRUE(report.clean()) << report.repro;
  }
}

TEST(RandomWalks, DuplicateReadsExerciseDedupPaths) {
  // Heavy re-reads over two variables: the orec engines route repeated
  // reads of one stripe through OrecReadLog's dedup probe, NOrec through
  // ValueReadLog's adjacent-duplicate collapse — with writers interleaved
  // so validation runs against the deduped logs.
  for (stm::Algo algo : kAllAlgos) {
    StmRandomConfig cfg;
    cfg.algo = algo;
    cfg.vars = 2;
    cfg.ops_per_tx = 5;
    cfg.write_pct = 30;
    cfg.reread_pct = 60;
    StmRandomScenario scenario(cfg);
    const auto report = explore_random(scenario, 40, 0xD0D0);
    EXPECT_TRUE(report.clean()) << report.repro;
  }
}

TEST(PctWalks, OpacityHolds) {
  StmRandomScenario scenario(StmRandomConfig{});
  const auto report = explore_pct(scenario, 30, 0xFACE, /*depth=*/3);
  EXPECT_TRUE(report.clean()) << report.repro;
  EXPECT_EQ(report.runs, 30u);
}

TEST(Exhaustive, SmallBoundCoversTreeClean) {
  // Two threads, one write each: small enough to enumerate completely.
  StmRandomConfig cfg;
  cfg.threads = 2;
  cfg.vars = 1;
  cfg.txs_per_thread = 1;
  cfg.ops_per_tx = 1;
  cfg.write_pct = 100;
  StmRandomScenario scenario(cfg);
  const auto report = explore_exhaustive(scenario, /*max_runs=*/50000);
  EXPECT_TRUE(report.clean()) << report.repro;
  EXPECT_TRUE(report.exhausted) << "tree larger than budget: " << report.runs;
  EXPECT_GT(report.runs, 1u);
}

TEST(Exhaustive, SnapshotSmallBoundClean) {
  StmSnapshotConfig cfg;
  cfg.writers = 1;
  cfg.vars = 2;
  cfg.reads_per_reader = 1;
  cfg.txs_per_writer = 1;
  StmSnapshotScenario scenario(cfg);
  const auto report = explore_exhaustive(scenario, /*max_runs=*/50000);
  EXPECT_TRUE(report.clean()) << report.repro;
  EXPECT_TRUE(report.exhausted) << "tree larger than budget: " << report.runs;
}

// The harness's mutation check: with NOrec's value validation skipped, a
// writer sliding between two reads of a read-only snapshot produces a torn
// snapshot that no serial execution explains. The harness must find it,
// print a reproducer, and the reproducer must replay deterministically.
TEST(FaultInjection, NorecValidationSkipIsCaughtAndReplayable) {
  StmSnapshotConfig cfg;
  cfg.algo = stm::Algo::kNOrec;
  StmSnapshotScenario scenario(cfg);

  // Sanity: the unfaulted engine is clean on the same campaign.
  const auto clean = explore_random(scenario, 100, 0x5EED);
  ASSERT_TRUE(clean.clean()) << clean.repro;

  FaultGuard fault(FaultSite::kNorecSkipValidation);
  const auto report = explore_random(scenario, 2000, 0x5EED);
  ASSERT_FALSE(report.clean())
      << "validation-skip mutant survived " << report.runs << " schedules";
  EXPECT_NE(report.repro.find("votm-check repro:"), std::string::npos);
  EXPECT_FALSE(report.schedule.empty());

  // The one-line reproducer pins the failure: replaying the schedule hits
  // the identical violation, run after run.
  for (int i = 0; i < 3; ++i) {
    const auto replay = replay_schedule(scenario, report.schedule);
    ASSERT_FALSE(replay.clean()) << "replay " << i << " lost the violation";
    EXPECT_EQ(replay.violation->what, report.violation->what);
  }
}

// Mutation check for the signature-filter fast path: a filter that treats
// a read/write signature overlap as disjoint skips the values_match()
// fallback it must trigger, and a reader validates a torn snapshot as
// clean. The snapshot scenario's writers write every variable the reader
// reads, so the overlap (and thus the mutated branch) is hit on every
// filtered validation.
TEST(FaultInjection, NorecFilterFallbackSkipIsCaughtAndReplayable) {
  if (!stm::kValidationFiltersDefault) {
    GTEST_SKIP() << "filters compiled off (-DVOTM_VALIDATION_FILTERS=OFF)";
  }
  StmSnapshotConfig cfg;
  cfg.algo = stm::Algo::kNOrec;
  StmSnapshotScenario scenario(cfg);

  // Sanity: the unfaulted filter path is clean on the same campaign.
  const auto clean = explore_random(scenario, 100, 0xF117);
  ASSERT_TRUE(clean.clean()) << clean.repro;

  FaultGuard fault(FaultSite::kNorecSkipFilterFallback);
  const auto report = explore_random(scenario, 2000, 0xF117);
  ASSERT_FALSE(report.clean())
      << "filter-fallback-skip mutant survived " << report.runs
      << " schedules";
  EXPECT_FALSE(report.schedule.empty());
  const auto replay = replay_schedule(scenario, report.schedule);
  ASSERT_FALSE(replay.clean()) << "replay lost the violation";
  EXPECT_EQ(replay.violation->what, report.violation->what);
}

TEST(FaultInjection, ExhaustiveFindsNorecValidationSkip) {
  StmSnapshotConfig cfg;
  cfg.algo = stm::Algo::kNOrec;
  cfg.vars = 2;
  cfg.reads_per_reader = 1;
  cfg.txs_per_writer = 1;
  StmSnapshotScenario scenario(cfg);
  FaultGuard fault(FaultSite::kNorecSkipValidation);
  const auto report = explore_exhaustive(scenario, /*max_runs=*/50000);
  ASSERT_FALSE(report.clean()) << "mutant survived exhaustive enumeration";
  EXPECT_FALSE(report.schedule.empty());
}

TEST(AdmissionChurn, InvariantsHoldUnderRandomWalks) {
  AdmissionChurnScenario scenario(default_admission_churn(3));
  const auto report = explore_random(scenario, 60, 0xAD31);
  EXPECT_TRUE(report.clean()) << report.repro;
}

TEST(AdmissionChurn, NonPowerOfTwoWorkerCount) {
  AdmissionChurnScenario scenario(default_admission_churn(5));
  const auto report = explore_random(scenario, 30, 0xAD32);
  EXPECT_TRUE(report.clean()) << report.repro;
}

TEST(AdmissionChurn, LockModeProgramExhaustive) {
  // Two workers against a mutator that drops to lock mode and back: small
  // enough to enumerate, and it covers the Q=1 drain edge completely.
  // try_admit only (every round): a worker blocked in admit() plus the
  // mutator's drain loop would be two concurrent spin loops, and the
  // schedule tree of paired spinners is unbounded — non-blocking workers
  // keep it finite so the enumeration can actually exhaust it.
  AdmissionChurnConfig cfg;
  cfg.workers = 2;
  cfg.max_threads = 2;
  cfg.initial_quota = 2;
  cfg.rounds = 1;
  cfg.try_admit_every = 1;
  cfg.program = {{AdmissionChurnStep::Op::kSetQuota, 1},
                 {AdmissionChurnStep::Op::kSetQuota, 2}};
  AdmissionChurnScenario scenario(cfg);
  const auto report = explore_exhaustive(scenario, /*max_runs=*/50000);
  EXPECT_TRUE(report.clean()) << report.repro;
  EXPECT_TRUE(report.exhausted) << "tree larger than budget: " << report.runs;
}

TEST(ViewStats, ExceptionAbortsAreAccounted) {
  // Thread 0 throws out of every second transaction; the stats-conservation
  // oracle (commits + aborts == attempts) fails if the exception path drops
  // its abort, and the ledger oracle fails if it double-leaves admission.
  ViewStatsScenario scenario(ViewStatsConfig{});
  const auto report = explore_random(scenario, 40, 0x1157A75);
  EXPECT_TRUE(report.clean()) << report.repro;
}

TEST(ViewStats, CleanRunAllEngines) {
  for (stm::Algo algo : kAllAlgos) {
    ViewStatsConfig cfg;
    cfg.algo = algo;
    cfg.threads = 2;
    cfg.max_threads = 2;
    cfg.fixed_quota = 2;
    cfg.txs_per_thread = 2;
    cfg.throw_every = 0;
    ViewStatsScenario scenario(cfg);
    const auto report = explore_random(scenario, 20, 0x7157A75);
    EXPECT_TRUE(report.clean()) << report.repro;
  }
}

// The progress guarantee under the adversarial schedule: the victim loses
// EVERY ordinary conflict (marked commit-tail fault) with no backoff
// configured, and must still commit within serial_after + 1 attempts via
// the serial rung. The scenario's oracles also pin serial mutual exclusion
// and ledger conservation on every explored schedule.
TEST(Escalation, StarvationFreedomAcrossEngines) {
  for (stm::Algo algo : kAllAlgos) {
    EscalationScenarioConfig cfg;
    cfg.algo = algo;
    EscalationScenario scenario(cfg);
    const auto report = explore_random(scenario, 25, 0x57A12);
    EXPECT_TRUE(report.clean()) << report.repro;
    EXPECT_EQ(report.runs, 25u);
  }
}

TEST(Escalation, StarvationFreedomThreeThreads) {
  // Two unfaulted peers: the serial drain displaces a genuinely contended
  // view, and the token queue sees concurrent ordinary admissions.
  EscalationScenarioConfig cfg;
  cfg.algo = stm::Algo::kOrecEagerRedo;
  cfg.threads = 3;
  cfg.max_threads = 3;
  cfg.serial_after = 2;
  EscalationScenario scenario(cfg);
  const auto report = explore_random(scenario, 25, 0x57A13);
  EXPECT_TRUE(report.clean()) << report.repro;
}

// The acceptance-bar campaign (10k random schedules) is minutes of work on
// a small host, so it only runs when asked for: VOTM_CHECK_HEAVY=1 ctest
// -R Heavy. The default suite above keeps per-test budgets CI-sized.
TEST(Heavy, TenThousandRandomSchedules) {
  if (std::getenv("VOTM_CHECK_HEAVY") == nullptr) {
    GTEST_SKIP() << "set VOTM_CHECK_HEAVY=1 to run the 10k-schedule campaign";
  }
  StmRandomScenario stm_scenario(StmRandomConfig{});
  const auto stm_report = explore_random(stm_scenario, 10000, 0xB16);
  EXPECT_TRUE(stm_report.clean()) << stm_report.repro;

  AdmissionChurnScenario adm_scenario(default_admission_churn(3));
  const auto adm_report = explore_random(adm_scenario, 10000, 0xB17);
  EXPECT_TRUE(adm_report.clean()) << adm_report.repro;
}

}  // namespace
}  // namespace votm::check

#else  // !VOTM_SCHED_POINTS

TEST(VotmCheck, SchedulePointsCompiledOut) {
  GTEST_SKIP() << "configure with -DVOTM_SCHED_POINTS=ON for this suite";
}

#endif  // VOTM_SCHED_POINTS
