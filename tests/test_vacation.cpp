// Tests of the Vacation workload: table semantics, the single-view and
// multi-view drivers across algorithms and RAC modes, and the global
// reservation-conservation invariant under concurrency.
#include <gtest/gtest.h>

#include "vacation/vacation.hpp"

namespace votm::vacation {
namespace {

core::ViewConfig table_view_config() {
  core::ViewConfig vc;
  vc.algo = stm::Algo::kNOrec;
  vc.max_threads = 4;
  vc.rac = core::RacMode::kDisabled;
  vc.initial_bytes = 1 << 20;
  return vc;
}

// ---------------- reservation packing --------------------------------------

TEST(ReservationPacking, RoundTrips) {
  for (Kind kind : {Kind::kCar, Kind::kFlight, Kind::kRoom}) {
    for (Word id : {Word{1}, Word{12345}, (Word{1} << 40)}) {
      const Word packed = pack_reservation(kind, id);
      EXPECT_EQ(reservation_kind(packed), kind);
      EXPECT_EQ(reservation_id(packed), id);
    }
  }
}

// ---------------- ResourceTable ---------------------------------------------

TEST(ResourceTableTest, AddQueryReserveRelease) {
  core::View view(table_view_config());
  ResourceTable table(view, 16);
  view.execute([&] {
    table.add(1, 3, 100);
    Word total = 0, free = 0, price = 0;
    ASSERT_TRUE(table.query(1, &total, &free, &price));
    EXPECT_EQ(total, 3u);
    EXPECT_EQ(free, 3u);
    EXPECT_EQ(price, 100u);

    Word paid = 0;
    EXPECT_TRUE(table.reserve(1, &paid));
    EXPECT_EQ(paid, 100u);
    table.query(1, &total, &free, nullptr);
    EXPECT_EQ(free, 2u);
    EXPECT_EQ(table.outstanding(), 1u);

    table.release(1);
    table.query(1, nullptr, &free, nullptr);
    EXPECT_EQ(free, 3u);
    EXPECT_EQ(table.outstanding(), 0u);
  });
}

TEST(ResourceTableTest, ReserveFailsWhenSoldOutOrMissing) {
  core::View view(table_view_config());
  ResourceTable table(view, 16);
  view.execute([&] {
    table.add(1, 1, 50);
    EXPECT_TRUE(table.reserve(1, nullptr));
    EXPECT_FALSE(table.reserve(1, nullptr));  // sold out
    EXPECT_FALSE(table.reserve(99, nullptr));  // missing
  });
}

TEST(ResourceTableTest, RetireOnlyRemovesSpareCapacity) {
  core::View view(table_view_config());
  ResourceTable table(view, 16);
  view.execute([&] {
    table.add(1, 5, 50);
    table.reserve(1, nullptr);
    table.reserve(1, nullptr);
    // 5 total, 3 free, 2 reserved: retiring 10 may only take the 3 free.
    EXPECT_EQ(table.retire(1, 10), 3u);
    Word total = 0, free = 0;
    table.query(1, &total, &free, nullptr);
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(free, 0u);
    EXPECT_EQ(table.outstanding(), 2u);
  });
}

TEST(ResourceTableTest, ReleaseAgainstMissingRowLandsInRetiredLedger) {
  core::View view(table_view_config());
  ResourceTable table(view, 16);
  view.execute([&] {
    table.add(1, 2, 100);
    ASSERT_TRUE(table.reserve(1, nullptr));
    ASSERT_TRUE(table.reserve(1, nullptr));
    EXPECT_TRUE(table.release(1));     // returns to the free pool
    EXPECT_FALSE(table.release(99));   // row never existed
    EXPECT_FALSE(table.release(99));   // counted per unit, not per row
  });
  // Accessor works standalone (wraps its own read transaction).
  EXPECT_EQ(table.released_into_retired(), 2u);
  // Conservation: every reserved unit is either back in the free pool or
  // still outstanding, and every failed release sits in the ledger
  // instead of silently evaporating.
  Word free = 0;
  view.execute_read([&] { table.query(1, nullptr, &free, nullptr); });
  EXPECT_EQ(free, 1u);
  EXPECT_EQ(table.outstanding(), 1u);
}

TEST(ResourceTableTest, AddGrowsExistingRow) {
  core::View view(table_view_config());
  ResourceTable table(view, 16);
  view.execute([&] {
    table.add(1, 2, 100);
    table.add(1, 3, 120);
    Word total = 0, free = 0, price = 0;
    table.query(1, &total, &free, &price);
    EXPECT_EQ(total, 5u);
    EXPECT_EQ(free, 5u);
    EXPECT_EQ(price, 120u);  // latest price wins
  });
}

// ---------------- CustomerTable ---------------------------------------------

TEST(CustomerTableTest, ReservationLifecycle) {
  core::View view(table_view_config());
  CustomerTable customers(view, 16);
  view.execute([&] {
    customers.add_customer(1);
    EXPECT_TRUE(customers.contains(1));
    customers.add_reservation(1, Kind::kCar, 10);
    customers.add_reservation(1, Kind::kRoom, 20);
    customers.add_reservation(1, Kind::kCar, 11);
    EXPECT_EQ(customers.reservation_count(1), 3u);
    EXPECT_EQ(customers.outstanding_of(Kind::kCar), 2u);
    EXPECT_EQ(customers.outstanding_of(Kind::kRoom), 1u);
    EXPECT_EQ(customers.outstanding_of(Kind::kFlight), 0u);

    std::vector<Word> drained;
    EXPECT_TRUE(customers.remove_customer(1, &drained));
    EXPECT_EQ(drained.size(), 3u);
    EXPECT_FALSE(customers.contains(1));
    EXPECT_FALSE(customers.remove_customer(1, &drained));
  });
}

// ---------------- end-to-end world -----------------------------------------

struct WorldCase {
  Layout layout;
  stm::Algo algo;
  core::RacMode rac;
  const char* name;
};

class VacationWorldTest : public ::testing::TestWithParam<WorldCase> {};

TEST_P(VacationWorldTest, InvariantsHoldAfterConcurrentRun) {
  const WorldCase& c = GetParam();
  VacationConfig vc;
  vc.relations = 64;
  vc.customers = 32;
  vc.tasks_per_thread = 400;
  vc.n_threads = 4;
  vc.layout = c.layout;
  vc.algo = c.algo;
  vc.rac = c.rac;
  vc.adapt_interval = 256;
  if (c.rac == core::RacMode::kFixed) {
    vc.fixed_quotas.assign(c.layout == Layout::kSingleView ? 1 : 4, 2);
  }
  VacationWorld world(vc);
  const VacationReport report = world.run();

  EXPECT_TRUE(report.invariants_hold)
      << "resource-side and customer-side reservation counts diverged";
  EXPECT_GT(report.reservations_made, 0u);
  EXPECT_GT(report.total.commits, 0u);
  EXPECT_EQ(report.views.size(), c.layout == Layout::kSingleView ? 1u : 4u);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, VacationWorldTest,
    ::testing::Values(
        WorldCase{Layout::kMultiView, stm::Algo::kNOrec,
                  core::RacMode::kAdaptive, "multi_norec_adaptive"},
        WorldCase{Layout::kSingleView, stm::Algo::kNOrec,
                  core::RacMode::kAdaptive, "single_norec_adaptive"},
        WorldCase{Layout::kMultiView, stm::Algo::kOrecEagerRedo,
                  core::RacMode::kAdaptive, "multi_oer_adaptive"},
        WorldCase{Layout::kMultiView, stm::Algo::kOrecLazy,
                  core::RacMode::kAdaptive, "multi_lazy_adaptive"},
        WorldCase{Layout::kMultiView, stm::Algo::kNOrec,
                  core::RacMode::kDisabled, "multi_norec_disabled"},
        WorldCase{Layout::kMultiView, stm::Algo::kNOrec, core::RacMode::kFixed,
                  "multi_norec_fixed2"},
        WorldCase{Layout::kSingleView, stm::Algo::kTml,
                  core::RacMode::kAdaptive, "single_tml_adaptive"}),
    [](const auto& info) { return info.param.name; });

TEST(VacationWorldTest, YieldModeStillConsistent) {
  VacationConfig vc;
  vc.relations = 32;
  vc.customers = 16;
  vc.tasks_per_thread = 150;
  vc.n_threads = 4;
  vc.layout = Layout::kMultiView;
  vc.algo = stm::Algo::kOrecEagerRedo;
  vc.yield_in_tx = true;  // force transaction overlap
  VacationWorld world(vc);
  const VacationReport report = world.run();
  EXPECT_TRUE(report.invariants_hold);
}

TEST(VacationWorldTest, RejectsBadConfig) {
  VacationConfig vc;
  vc.customers = 2;
  vc.n_threads = 4;  // fewer customers than threads
  EXPECT_THROW(VacationWorld{vc}, std::invalid_argument);
  VacationConfig vc2;
  vc2.rac = core::RacMode::kFixed;
  vc2.fixed_quotas = {1};  // needs 4 for multi-view
  EXPECT_THROW(VacationWorld{vc2}, std::invalid_argument);
}

TEST(VacationWorldTest, DeterministicSeedGivesSameTaskMix) {
  auto make = [] {
    VacationConfig vc;
    vc.relations = 32;
    vc.customers = 16;
    vc.tasks_per_thread = 200;
    vc.n_threads = 2;
    vc.rac = core::RacMode::kDisabled;
    vc.seed = 42;
    return vc;
  };
  VacationWorld w1(make()), w2(make());
  const VacationReport r1 = w1.run();
  const VacationReport r2 = w2.run();
  // Task mix is seed-determined; outcomes may differ slightly because
  // interleavings change which reservations get denied.
  EXPECT_EQ(r1.customers_deleted, r2.customers_deleted);
  EXPECT_TRUE(r1.invariants_hold);
  EXPECT_TRUE(r2.invariants_hold);
}

}  // namespace
}  // namespace votm::vacation
