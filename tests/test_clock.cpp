// VersionClock (stm/clock.hpp): policy semantics, quiescence slots, the
// engines under GV1/GV4/GV5/GV6, read-only propagation from the
// containers, and votm-check campaigns including the lost-GV4-CAS and
// GV6-shard-lag fault plans.
//
// The unit/stress/container sections run in every configuration; the
// exploration and fault-injection sections need the check harness
// (-DVOTM_SCHED_POINTS=ON, the default).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "containers/tx_counter.hpp"
#include "containers/tx_hash_map.hpp"
#include "containers/tx_sorted_list.hpp"
#include "containers/tx_stack.hpp"
#include "containers/tx_var.hpp"
#include "core/thread_ctx.hpp"
#include "core/view.hpp"
#include "stm/clock.hpp"
#include "stm/factory.hpp"
#include "stm/orec_eager_redo.hpp"
#include "util/thread_ordinal.hpp"

namespace votm {
namespace {

using stm::ClockPolicy;
using stm::VersionClock;

constexpr stm::Algo kOrecAlgos[] = {
    stm::Algo::kOrecEagerRedo,
    stm::Algo::kOrecLazy,
    stm::Algo::kOrecEagerUndo,
};
constexpr ClockPolicy kPolicies[] = {
    ClockPolicy::kGv1,
    ClockPolicy::kGv4,
    ClockPolicy::kGv5,
    ClockPolicy::kGv6,
};

TEST(ClockPolicy, NamesRoundTrip) {
  for (ClockPolicy p : kPolicies) {
    ClockPolicy parsed{};
    ASSERT_TRUE(stm::clock_policy_from_string(stm::to_string(p), &parsed));
    EXPECT_EQ(parsed, p);
  }
  ClockPolicy parsed{};
  EXPECT_TRUE(stm::clock_policy_from_string("GV4", &parsed));
  EXPECT_EQ(parsed, ClockPolicy::kGv4);
  EXPECT_FALSE(stm::clock_policy_from_string("gv2", &parsed));
}

TEST(VersionClockUnit, Gv1TicketsAreDenseAndSkipWhenAdjacent) {
  VersionClock clock(ClockPolicy::kGv1);
  const auto t1 = clock.tick(0);
  EXPECT_EQ(t1.end_time, 1u);
  EXPECT_FALSE(t1.need_validation);  // end == start + 1: nothing slipped in
  EXPECT_EQ(clock.read(), 1u);
  const auto t2 = clock.tick(0);  // stale start: someone (t1) committed
  EXPECT_EQ(t2.end_time, 2u);
  EXPECT_TRUE(t2.need_validation);
}

TEST(VersionClockUnit, Gv4WinnerMatchesGv1Uncontended) {
  VersionClock clock(ClockPolicy::kGv4);
  const auto t1 = clock.tick(0);
  EXPECT_EQ(t1.end_time, 1u);
  EXPECT_FALSE(t1.need_validation);
  EXPECT_EQ(clock.read(), 1u);
  const auto t2 = clock.tick(0);
  EXPECT_EQ(t2.end_time, 2u);
  EXPECT_TRUE(t2.need_validation);
}

TEST(VersionClockUnit, Gv5TicksWithoutGlobalTraffic) {
  VersionClock clock(ClockPolicy::kGv5);
  const auto t1 = clock.tick(0);
  EXPECT_EQ(t1.end_time, 1u);
  EXPECT_TRUE(t1.need_validation);  // GV5 can never prove quiescence
  EXPECT_EQ(clock.read(), 0u);      // global untouched
  clock.note_commit(t1.end_time);
  // The own-slot cache keeps this thread's timestamps strictly increasing
  // even though the global clock never moved.
  const auto t2 = clock.tick(0);
  EXPECT_EQ(t2.end_time, 2u);
  EXPECT_EQ(clock.read(), 0u);
}

TEST(VersionClockUnit, Gv5ExtensionPropagatesFutureTimestamps) {
  VersionClock clock(ClockPolicy::kGv5);
  const auto t = clock.tick(0);
  clock.note_commit(t.end_time);
  // A reader that met version t.end_time extends: the bound must cover the
  // observed version, and the global clock must be pushed up to it so
  // later snapshots inherit the happens-after edge.
  const std::uint64_t bound = clock.extension_bound(t.end_time);
  EXPECT_GE(bound, t.end_time);
  EXPECT_GE(clock.read(), t.end_time);
}

TEST(VersionClockUnit, Gv6ShardedTicksAlwaysValidate) {
  VersionClock clock(ClockPolicy::kGv6);
  EXPECT_EQ(clock.begin_snapshot(), 0u);  // nothing committed anywhere yet
  const auto t1 = clock.tick(0);
  EXPECT_EQ(t1.end_time, 1u);
  // Sharded: the committer scans the shards but cannot prove no peer is
  // between its scan and its shard publish, so tickets always validate.
  EXPECT_TRUE(t1.need_validation);
  EXPECT_EQ(clock.read(), 1u);  // read() is the max over shards
  const auto t2 = clock.tick(t1.end_time);
  EXPECT_EQ(t2.end_time, 2u);
  EXPECT_TRUE(t2.need_validation);
}

TEST(VersionClockUnit, Gv6SnapshotCoversCompletedCommits) {
  VersionClock clock(ClockPolicy::kGv6);
  const auto t = clock.tick(0);
  // tick_gv6 CAS-maxes the committer's own shard BEFORE the ticket
  // returns, so any snapshot taken after a commit completes must cover it
  // — this is what makes completed_commit_bound() safe for the MVCC
  // horizon and retire_stamp().
  EXPECT_GE(clock.begin_snapshot(), t.end_time);
  EXPECT_GE(clock.completed_commit_bound(), t.end_time);
}

TEST(VersionClockUnit, Gv6ExtensionBoundCoversObservedAndRefreshesCache) {
  VersionClock clock(ClockPolicy::kGv6);
  const auto t = clock.tick(0);
  const std::uint64_t bound = clock.extension_bound(t.end_time);
  EXPECT_GE(bound, t.end_time);
  // extension_bound refreshed this thread's cached bound, so the next
  // snapshot starts at least that new.
  EXPECT_GE(clock.begin_snapshot(), bound);
}

TEST(VersionClockUnit, QuiescenceSlotsPublishMonotonically) {
  VersionClock clock(ClockPolicy::kGv1);
  EXPECT_EQ(clock.quiescence_horizon(), 0u);  // nobody published yet
  clock.note_commit(7);
  EXPECT_EQ(clock.last_commit(thread_ordinal()), 7u);
  clock.note_commit(3);  // late smaller publish must not regress the slot
  EXPECT_EQ(clock.last_commit(thread_ordinal()), 7u);
  clock.note_commit(9);
  EXPECT_EQ(clock.last_commit(thread_ordinal()), 9u);
  EXPECT_EQ(clock.quiescence_horizon(), 9u);

  // A second thread publishing a smaller timestamp pulls the horizon down
  // (unless it aliases this thread's slot, which keeps the conservative
  // direction anyway).
  std::thread peer([&] { clock.note_commit(5); });
  peer.join();
  EXPECT_LE(clock.quiescence_horizon(), 9u);
  EXPECT_GE(clock.quiescence_horizon(), 5u);
}

// Writers keep word pairs equal while read-only transactions assert the
// pair is never torn — on real threads, under every policy and orec
// engine. This is the hardware-interleaving complement of the votm-check
// sweeps below, and the adversarial case for GV5's future timestamps
// (reader snapshots lag the writers' commit stamps until extension).
void run_pair_stress(stm::Algo algo, ClockPolicy policy) {
  stm::EngineConfig cfg;
  cfg.clock_policy = policy;
  auto engine = stm::make_engine(algo, cfg);

  constexpr unsigned kWriters = 2;
  constexpr unsigned kReaders = 2;
  constexpr unsigned kTxs = 1500;
  constexpr unsigned kPairs = 8;
  std::vector<stm::Word> data(kPairs * 2, 0);
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> threads;
  for (unsigned w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      stm::TxThread tx;
      for (unsigned j = 0; j < kTxs; ++j) {
        const unsigned p = (w + j) % kPairs;
        stm::atomically(*engine, tx, [&](stm::TxThread& t) {
          const stm::Word v = engine->read(t, &data[2 * p]) + 1;
          engine->write(t, &data[2 * p], v);
          engine->write(t, &data[2 * p + 1], v);
        });
      }
    });
  }
  for (unsigned r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      stm::TxThread tx;
      tx.read_only = true;
      for (unsigned j = 0; j < kTxs; ++j) {
        const unsigned p = (r + j) % kPairs;
        stm::Word a = 0;
        stm::Word b = 0;
        stm::atomically(*engine, tx, [&](stm::TxThread& t) {
          a = engine->read(t, &data[2 * p]);
          b = engine->read(t, &data[2 * p + 1]);
        });
        if (a != b) torn.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(torn.load(), 0u)
      << stm::to_string(algo) << "/" << stm::to_string(policy);
  stm::Word total = 0;
  for (unsigned p = 0; p < kPairs; ++p) {
    EXPECT_EQ(data[2 * p], data[2 * p + 1]) << "pair " << p;
    total += data[2 * p];
  }
  EXPECT_EQ(total, stm::Word{kWriters} * kTxs);
}

TEST(ClockStress, PairSnapshotsHoldAcrossPoliciesAndEngines) {
  for (stm::Algo algo : kOrecAlgos) {
    for (ClockPolicy policy : kPolicies) {
      run_pair_stress(algo, policy);
    }
  }
}

TEST(ClockStress, ClockAdvancesMonotonicallyUnderCommits) {
  stm::OrecEagerRedoEngine engine(stm::OrecTable::kDefaultSize,
                                  ClockPolicy::kGv4);
  constexpr unsigned kThreads = 3;
  constexpr unsigned kTxs = 1000;
  std::vector<stm::Word> slots(kThreads, 0);
  std::atomic<std::uint64_t> regressions{0};
  std::vector<std::thread> threads;
  for (unsigned i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      stm::TxThread tx;
      std::uint64_t last = engine.clock();
      for (unsigned j = 0; j < kTxs; ++j) {
        stm::atomically(engine, tx, [&](stm::TxThread& t) {
          engine.write(t, &slots[i], engine.read(t, &slots[i]) + 1);
        });
        const std::uint64_t now = engine.clock();
        if (now < last) regressions.fetch_add(1, std::memory_order_relaxed);
        last = now;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(regressions.load(), 0u);
  for (unsigned i = 0; i < kThreads; ++i) EXPECT_EQ(slots[i], kTxs);
  EXPECT_GE(engine.version_clock().quiescence_horizon(), 1u);
}

// --- read-only propagation from the containers ----------------------------

TEST(ContainerReadOnly, ReadsOutsideTxRunAsReadOnlyTransactions) {
  core::ViewConfig cfg;
  cfg.algo = stm::Algo::kOrecEagerRedo;
  core::View view(cfg);
  containers::TxHashMap map(view, 16);
  containers::TxVar<stm::Word> var(view, 41);
  containers::TxCounter counter(view);
  containers::TxStack stack(view);
  containers::TxSortedList list(view);
  view.execute([&] {
    map.put(1, 10);
    map.put(2, 20);
    var.set(42);
    counter.add(5);
    stack.push(7);
    list.insert(3);
    list.insert(9);
  });

  // Outside any transaction, a container read must run inside its own
  // read-only transaction: tx.read_only observed from within the read.
  bool saw_read_only_tx = false;
  std::size_t entries = 0;
  map.for_each([&](stm::Word, stm::Word) {
    const stm::TxThread& tx = core::thread_ctx().tx;
    saw_read_only_tx = tx.in_tx && tx.read_only;
    ++entries;
  });
  EXPECT_TRUE(saw_read_only_tx);
  EXPECT_EQ(entries, 2u);

  stm::Word v = 0;
  EXPECT_TRUE(map.get(1, &v));
  EXPECT_EQ(v, 10u);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(var.get(), 42u);
  EXPECT_EQ(counter.value(), 5u);
  EXPECT_FALSE(stack.empty());
  EXPECT_EQ(stack.size(), 1u);
  EXPECT_TRUE(list.contains(9));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_TRUE(list.is_sorted());

  // Inside a writer transaction the same reads stay part of it: no nested
  // transaction, no read-only flag.
  view.execute([&] {
    const stm::TxThread& tx = core::thread_ctx().tx;
    EXPECT_TRUE(tx.in_tx);
    EXPECT_FALSE(tx.read_only);
    EXPECT_TRUE(map.contains(2));
    EXPECT_EQ(var.get(), 42u);
    EXPECT_FALSE(tx.read_only);  // unchanged by the container read
    map.put(3, 30);
  });
  EXPECT_EQ(map.size(), 3u);
}

}  // namespace
}  // namespace votm

// --- votm-check: exploration + fault campaigns (harness builds only) -------

#include "check/sched_point.hpp"

#if defined(VOTM_SCHED_POINTS) && VOTM_SCHED_POINTS

#include <cstdlib>

#include "check/explore.hpp"
#include "check/fault.hpp"
#include "check/scenarios.hpp"

namespace votm::check {
namespace {

using stm::ClockPolicy;

constexpr stm::Algo kOrecAlgos[] = {
    stm::Algo::kOrecEagerRedo,
    stm::Algo::kOrecLazy,
    stm::Algo::kOrecEagerUndo,
};
constexpr ClockPolicy kPolicies[] = {
    ClockPolicy::kGv1,
    ClockPolicy::kGv4,
    ClockPolicy::kGv5,
    ClockPolicy::kGv6,
};

TEST(ClockPolicyWalks, OpacityHoldsAcrossPolicies) {
  for (stm::Algo algo : kOrecAlgos) {
    for (ClockPolicy policy : kPolicies) {
      StmRandomConfig cfg;
      cfg.algo = algo;
      cfg.clock_policy = policy;
      StmRandomScenario scenario(cfg);
      const auto report = explore_random(scenario, 25, 0xC10C);
      EXPECT_TRUE(report.clean()) << report.repro;
      EXPECT_EQ(report.runs, 25u);
    }
  }
}

TEST(ClockPolicyWalks, SnapshotConsistencyHoldsAcrossPolicies) {
  for (stm::Algo algo : kOrecAlgos) {
    for (ClockPolicy policy : kPolicies) {
      StmSnapshotConfig cfg;
      cfg.algo = algo;
      cfg.clock_policy = policy;
      StmSnapshotScenario scenario(cfg);
      const auto report = explore_random(scenario, 25, 0x5EED);
      EXPECT_TRUE(report.clean()) << report.repro;
    }
  }
}

// Availability fault: the GV4 ticket CAS loses to a phantom winner on
// every commit. Correctness (opacity, snapshot consistency) and progress
// must survive; the trigger counters prove the campaign is not vacuous.
TEST(ClockFault, LostGv4CasIsHarmlessEverywhere) {
  for (stm::Algo algo : kOrecAlgos) {
    std::uint64_t triggers = 0;
    {
      FaultGuard guard(FaultSite::kGv4ClockCasLost);
      StmRandomConfig cfg;
      cfg.algo = algo;
      cfg.clock_policy = ClockPolicy::kGv4;
      cfg.write_pct = 70;
      StmRandomScenario scenario(cfg);
      const auto report = explore_random(scenario, 20, 0x10CA);
      EXPECT_TRUE(report.clean()) << report.repro;

      StmSnapshotConfig snap;
      snap.algo = algo;
      snap.clock_policy = ClockPolicy::kGv4;
      StmSnapshotScenario snap_scenario(snap);
      const auto snap_report = explore_random(snap_scenario, 20, 0x10CB);
      EXPECT_TRUE(snap_report.clean()) << snap_report.repro;
      triggers = FaultInjector::instance().triggers(FaultSite::kGv4ClockCasLost);
    }
    EXPECT_GT(triggers, 0u) << stm::to_string(algo);
  }
}

// Seeded plans land the lost-CAS window at different points of the run;
// any failure reproduces from (seed, schedule) alone.
TEST(ClockFault, SeededLostCasWindows) {
  std::uint64_t total_triggers = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FaultInjector::instance().arm_seeded(FaultSite::kGv4ClockCasLost, seed,
                                         /*max_skip=*/12, /*fire=*/2);
    StmRandomConfig cfg;
    cfg.algo = stm::Algo::kOrecEagerRedo;
    cfg.clock_policy = ClockPolicy::kGv4;
    cfg.write_pct = 70;
    StmRandomScenario scenario(cfg);
    const auto report = explore_random(scenario, 4, seed);
    EXPECT_TRUE(report.clean()) << "seed=" << seed << " " << report.repro;
    total_triggers +=
        FaultInjector::instance().triggers(FaultSite::kGv4ClockCasLost);
    FaultInjector::instance().disarm(FaultSite::kGv4ClockCasLost);
  }
  EXPECT_GT(total_triggers, 0u);
}

// Clock monotonicity survives the lost CAS: the adopt path never moves the
// clock backwards and every ticket stays ahead of its start time.
TEST(ClockFault, MonotonicitySurvivesLostCas) {
  stm::VersionClock clock(ClockPolicy::kGv4);
  FaultGuard guard(FaultSite::kGv4ClockCasLost);
  std::uint64_t last_end = 0;
  std::uint64_t start = 0;
  for (int i = 0; i < 100; ++i) {
    const auto t = clock.tick(start);
    EXPECT_GT(t.end_time, start);
    EXPECT_GE(t.end_time, last_end);
    EXPECT_TRUE(t.need_validation);  // the loser path always validates
    last_end = t.end_time;
    start = clock.read();
    EXPECT_GE(start, t.end_time);  // the phantom winner advanced the clock
  }
  EXPECT_EQ(FaultInjector::instance().triggers(FaultSite::kGv4ClockCasLost),
            100u);
}

// Availability fault: every GV6 begin_snapshot returns the maximally
// stale bound 0, so readers start as far behind the shards as possible
// and every first read runs the extension/validation path. Correctness
// must survive — GV6's safety argument is that a stale cached bound is
// merely a stale-but-valid start time.
TEST(ClockFault, Gv6ShardLagIsHarmlessEverywhere) {
  for (stm::Algo algo : kOrecAlgos) {
    std::uint64_t triggers = 0;
    {
      FaultGuard guard(FaultSite::kGv6ShardLag);
      StmRandomConfig cfg;
      cfg.algo = algo;
      cfg.clock_policy = ClockPolicy::kGv6;
      cfg.write_pct = 70;
      StmRandomScenario scenario(cfg);
      const auto report = explore_random(scenario, 20, 0x61A0);
      EXPECT_TRUE(report.clean()) << report.repro;

      StmSnapshotConfig snap;
      snap.algo = algo;
      snap.clock_policy = ClockPolicy::kGv6;
      StmSnapshotScenario snap_scenario(snap);
      const auto snap_report = explore_random(snap_scenario, 20, 0x61A1);
      EXPECT_TRUE(snap_report.clean()) << snap_report.repro;
      triggers = FaultInjector::instance().triggers(FaultSite::kGv6ShardLag);
    }
    EXPECT_GT(triggers, 0u) << stm::to_string(algo);
  }
}

// Seeded plans lag different snapshots of the run; any failure reproduces
// from (seed, schedule) alone.
TEST(ClockFault, SeededGv6ShardLagWindows) {
  std::uint64_t total_triggers = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    FaultInjector::instance().arm_seeded(FaultSite::kGv6ShardLag, seed,
                                         /*max_skip=*/12, /*fire=*/2);
    StmRandomConfig cfg;
    cfg.algo = stm::Algo::kOrecEagerRedo;
    cfg.clock_policy = ClockPolicy::kGv6;
    cfg.write_pct = 70;
    StmRandomScenario scenario(cfg);
    const auto report = explore_random(scenario, 4, seed);
    EXPECT_TRUE(report.clean()) << "seed=" << seed << " " << report.repro;
    total_triggers +=
        FaultInjector::instance().triggers(FaultSite::kGv6ShardLag);
    FaultInjector::instance().disarm(FaultSite::kGv6ShardLag);
  }
  EXPECT_GT(total_triggers, 0u);
}

// Under the armed lag every snapshot is 0, the worst legal start time;
// tickets must still advance past everything the shards have seen.
TEST(ClockFault, Gv6LaggedSnapshotKeepsTicketsMonotone) {
  stm::VersionClock clock(ClockPolicy::kGv6);
  FaultGuard guard(FaultSite::kGv6ShardLag);
  std::uint64_t last_end = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t start = clock.begin_snapshot();
    EXPECT_EQ(start, 0u);  // armed: maximally stale
    const auto t = clock.tick(start);
    EXPECT_GT(t.end_time, last_end);
    EXPECT_TRUE(t.need_validation);
    last_end = t.end_time;
  }
  EXPECT_EQ(FaultInjector::instance().triggers(FaultSite::kGv6ShardLag),
            100u);
}

// Heavy campaign (VOTM_CHECK_HEAVY=1 ctest -R Heavy): the full policy x
// orec-engine matrix under a 10k+-schedule random walk budget.
TEST(Heavy, ClockPolicyMatrixCampaign) {
  if (std::getenv("VOTM_CHECK_HEAVY") == nullptr) {
    GTEST_SKIP() << "set VOTM_CHECK_HEAVY=1 to run the clock-policy campaign";
  }
  for (stm::Algo algo : kOrecAlgos) {
    for (ClockPolicy policy : kPolicies) {
      StmRandomConfig cfg;
      cfg.algo = algo;
      cfg.clock_policy = policy;
      StmRandomScenario scenario(cfg);
      const auto report = explore_random(scenario, 1200, 0xB16);
      EXPECT_TRUE(report.clean()) << report.repro;

      StmSnapshotConfig snap;
      snap.algo = algo;
      snap.clock_policy = policy;
      StmSnapshotScenario snap_scenario(snap);
      const auto snap_report = explore_random(snap_scenario, 400, 0xB19);
      EXPECT_TRUE(snap_report.clean()) << snap_report.repro;
    }
  }
}

}  // namespace
}  // namespace votm::check

#endif  // VOTM_SCHED_POINTS
