// Integration tests of the View layer: execute() retry semantics, typed
// accessors, lock mode (Q = 1), RAC quota behaviour under contention,
// adaptive quota movement, transactional memory management, multi-view
// independence, and user-exception handling.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/access.hpp"
#include "core/view.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace votm::core {
namespace {

ViewConfig basic_config(stm::Algo algo, unsigned threads = 8) {
  ViewConfig vc;
  vc.algo = algo;
  vc.max_threads = threads;
  vc.rac = RacMode::kAdaptive;
  vc.initial_bytes = 1 << 20;
  return vc;
}

class ViewTest : public ::testing::TestWithParam<stm::Algo> {};

TEST_P(ViewTest, ExecutePublishesOnCommit) {
  View view(basic_config(GetParam()));
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 42); });
  stm::Word seen = 0;
  view.execute_read([&] { seen = vread(cell); });
  EXPECT_EQ(seen, 42u);
  EXPECT_EQ(view.stats().commits, 2u);
}

TEST_P(ViewTest, ConcurrentIncrementsAreExact) {
  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 1500;
  View view(basic_config(GetParam(), kThreads));
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 0); });

  StartBarrier barrier(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        view.execute([&] { vadd<stm::Word>(cell, 1); });
      }
    });
  }
  for (auto& th : pool) th.join();
  stm::Word final_value = 0;
  view.execute_read([&] { final_value = vread(cell); });
  EXPECT_EQ(final_value, kThreads * static_cast<stm::Word>(kPerThread));
  EXPECT_GE(view.stats().commits, kThreads * static_cast<std::uint64_t>(kPerThread));
}

TEST_P(ViewTest, UserExceptionRollsBackAndPropagates) {
  if (GetParam() == stm::Algo::kTml || GetParam() == stm::Algo::kCgl) {
    GTEST_SKIP() << "in-place engines cannot undo published writes";
  }
  View view(basic_config(GetParam()));
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 7); });
  struct Boom {};
  EXPECT_THROW(view.execute([&] {
    vwrite<stm::Word>(cell, 99);
    throw Boom{};
  }),
               Boom);
  stm::Word seen = 0;
  view.execute_read([&] { seen = vread(cell); });
  EXPECT_EQ(seen, 7u);
  // The view must be reusable after the exception (admission released).
  view.execute([&] { vwrite<stm::Word>(cell, 8); });
}

TEST_P(ViewTest, SubWordAccessors) {
  View view(basic_config(GetParam()));
  auto* bytes = static_cast<std::uint8_t*>(view.alloc(64));
  view.execute([&] {
    for (int i = 0; i < 16; ++i) {
      vwrite<std::uint8_t>(&bytes[i], static_cast<std::uint8_t>(i * 3));
    }
    vwrite<std::uint32_t>(reinterpret_cast<std::uint32_t*>(bytes + 32), 0xdeadbeef);
  });
  view.execute_read([&] {
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(vread(&bytes[i]), static_cast<std::uint8_t>(i * 3));
    }
    EXPECT_EQ(vread(reinterpret_cast<std::uint32_t*>(bytes + 32)), 0xdeadbeefu);
  });
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ViewTest,
                         ::testing::Values(stm::Algo::kNOrec,
                                           stm::Algo::kOrecEagerRedo,
                                           stm::Algo::kOrecLazy,
                                           stm::Algo::kOrecEagerUndo,
                                           stm::Algo::kTml, stm::Algo::kCgl),
                         [](const auto& info) { return to_string(info.param); });

// ---------------- exception-path accounting --------------------------------

TEST(ViewExceptions, ExceptionAbortIsAccountedInStats) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 4);
  vc.rac = RacMode::kFixed;
  vc.fixed_quota = 2;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 1); });

  struct Boom {};
  EXPECT_THROW(view.execute([&] {
    vwrite<stm::Word>(cell, 2);
    throw Boom{};
  }),
               Boom);

  // The thrown-out-of transaction is an abort like any other: its cycles
  // were spent and must show up in the totals, not vanish.
  const stm::StatsSnapshot st = view.stats();
  EXPECT_EQ(st.commits, 1u);
  EXPECT_EQ(st.aborts, 1u);
  EXPECT_GT(st.aborted_cycles, 0u);
  ASSERT_EQ(view.admission().admitted(), 0u);

  // The retry streak died with the exception: no backoff state may leak
  // into this thread's next transaction.
  EXPECT_EQ(thread_ctx().tx.consecutive_aborts, 0u);
  view.execute([&] { vwrite<stm::Word>(cell, 3); });
  EXPECT_EQ(vread(cell), 3u);
}

TEST(ViewExceptions, MisuseLeavesAdmissionExactlyOnce) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 2);
  vc.rac = RacMode::kFixed;
  vc.fixed_quota = 2;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));

  // A write inside a read-only transaction is a misuse: the engine-side
  // handler leaves the admission controller before the logic_error reaches
  // the exception path, which must then NOT leave a second time (a double
  // leave underflows P and wedges every later admission).
  EXPECT_THROW(view.execute_read([&] { vwrite<stm::Word>(cell, 1); }),
               std::logic_error);
  ASSERT_EQ(view.admission().admitted(), 0u);

  view.execute([&] { vwrite<stm::Word>(cell, 5); });
  EXPECT_EQ(vread(cell), 5u);
  EXPECT_EQ(view.admission().admitted(), 0u);
}

// ---------------- staged-API misuse ----------------------------------------

TEST(ViewMisuse, NestedAcquireOfSameViewIsDefinedError) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 2);
  vc.rac = RacMode::kFixed;
  vc.fixed_quota = 2;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 1); });

  // Re-entering the view with a transaction already open used to silently
  // overwrite the checkpoint and rollback hooks (UB on the retry path); it
  // must now throw before touching any state.
  try {
    view.execute([&] {
      vwrite<stm::Word>(cell, 2);
      view.enter(thread_ctx(), /*read_only=*/false);
      FAIL() << "nested acquire_view did not throw";
    });
    FAIL() << "logic_error did not propagate";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("nested acquire"),
              std::string::npos)
        << e.what();
  }
  // The guard fired before mutating anything; the exception path unwound
  // the open transaction exactly once and the view stays usable.
  EXPECT_EQ(view.admission().admitted(), 0u);
  EXPECT_EQ(vread(cell), 1u);
  view.execute([&] { vwrite<stm::Word>(cell, 3); });
  EXPECT_EQ(vread(cell), 3u);
}

TEST(ViewMisuse, AcquireWhileOnAnotherViewIsDefinedError) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 2);
  vc.rac = RacMode::kFixed;
  vc.fixed_quota = 2;
  View a(vc), b(vc);
  auto* ca = static_cast<stm::Word*>(a.alloc(sizeof(stm::Word)));
  a.execute([&] { vwrite<stm::Word>(ca, 1); });

  try {
    a.execute([&] {
      vwrite<stm::Word>(ca, 2);
      b.enter(thread_ctx(), /*read_only=*/false);
      FAIL() << "cross-view acquire_view did not throw";
    });
    FAIL() << "logic_error did not propagate";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("another view"), std::string::npos)
        << e.what();
  }
  // View B never admitted (the guard fired first); view A's own exception
  // handler rolled its transaction back and left its admission.
  EXPECT_EQ(a.admission().admitted(), 0u);
  EXPECT_EQ(b.admission().admitted(), 0u);
  EXPECT_EQ(b.stats().commits + b.stats().aborts, 0u);
  EXPECT_EQ(vread(ca), 1u);
  a.execute([&] { vwrite<stm::Word>(ca, 4); });
  b.execute([&] { (void)0; });
}

TEST(ViewMisuse, ReleaseWithoutAcquireIsDefinedError) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 2);
  View view(vc);
  try {
    view.exit(thread_ctx());
    FAIL() << "release_view without acquire did not throw";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("without a matching acquire_view"),
              std::string::npos)
        << e.what();
  }
  EXPECT_EQ(view.admission().admitted(), 0u);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 1); });
  EXPECT_EQ(vread(cell), 1u);
}

TEST(ViewMisuse, ReleaseOnWrongViewIsDefinedError) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 2);
  View a(vc), b(vc);
  auto* ca = static_cast<stm::Word*>(a.alloc(sizeof(stm::Word)));
  try {
    a.execute([&] {
      vwrite<stm::Word>(ca, 1);
      b.exit(thread_ctx());
      FAIL() << "cross-view release_view did not throw";
    });
    FAIL() << "logic_error did not propagate";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("different view"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(a.admission().admitted(), 0u);
  EXPECT_EQ(b.admission().admitted(), 0u);
  a.execute([&] { vwrite<stm::Word>(ca, 2); });
  EXPECT_EQ(vread(ca), 2u);
}

// ---------------- RAC-specific behaviour ----------------------------------

TEST(ViewRac, FixedQuotaOneRunsInLockMode) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 8);
  vc.rac = RacMode::kFixed;
  vc.fixed_quota = 1;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));

  constexpr unsigned kThreads = 6;
  constexpr int kPerThread = 800;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        view.execute([&] { vadd<stm::Word>(cell, 1); });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(cell), kThreads * static_cast<stm::Word>(kPerThread));
  // Lock mode: exclusive execution, so no aborts are possible.
  EXPECT_EQ(view.stats().aborts, 0u);
  EXPECT_EQ(view.quota(), 1u);
}

TEST(ViewRac, DisabledModeSkipsAdmission) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 4);
  vc.rac = RacMode::kDisabled;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 1); });
  EXPECT_EQ(view.stats().commits, 1u);
}

TEST(ViewRac, AdaptiveLowersQuotaUnderForcedContention) {
  // A single hot word hammered by writers with OrecEagerRedo and immediate
  // retry generates delta >> 1; adaptive RAC must pull the quota down.
  ViewConfig vc = basic_config(stm::Algo::kOrecEagerRedo, 8);
  vc.adapt_interval = 128;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        view.execute([&] {
          // Encounter-time lock acquired at the write, then held across a
          // reschedule: every other admitted thread burns aborted cycles
          // against the held orec — the paper's near-livelock mechanism.
          vadd<stm::Word>(cell, 1);
          std::this_thread::yield();
        });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(cell), kThreads * 50u);
  EXPECT_LT(view.quota(), 8u) << "quota should have been halved at least once";
  EXPECT_GT(view.stats().aborts, 0u);
}

TEST(ViewRac, AdaptiveKeepsQuotaAtMaxWithoutContention) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 8);
  vc.adapt_interval = 128;
  View view(vc);
  constexpr unsigned kThreads = 4;
  auto* cells = static_cast<stm::Word*>(view.alloc(kThreads * 64 * sizeof(stm::Word)));

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < 600; ++i) {
        view.execute([&] {
          // Disjoint per-thread slots: no conflicts at all.
          vadd<stm::Word>(&cells[t * 64], 1);
        });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(view.quota(), 8u);
}

TEST(ViewRac, ManualQuotaOverride) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 8);
  vc.rac = RacMode::kFixed;
  vc.fixed_quota = 8;
  View view(vc);
  view.set_quota(3);
  EXPECT_EQ(view.quota(), 3u);
  view.set_quota(0);  // clamped
  EXPECT_EQ(view.quota(), 1u);
}

// ---------------- escalation ladder (real threads) -------------------------

TEST(ViewEscalation, SerialRungBoundsStreaksUnderHotContention) {
  // The paper's livelock shape (one hot word, encounter-time locking, a
  // reschedule inside the transaction, no backoff) with the ladder armed:
  // the counter stays exact, and no transaction's consecutive-abort streak
  // can exceed serial_after — past it the serial rung commits irrevocably.
  ViewConfig vc = basic_config(stm::Algo::kOrecEagerRedo, 8);
  vc.rac = RacMode::kFixed;
  vc.fixed_quota = 8;
  vc.backoff = BackoffPolicy::kNone;
  vc.escalation.enabled = true;
  vc.escalation.aging_after = 4;
  vc.escalation.serial_after = 16;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 0); });

  constexpr unsigned kThreads = 8;
  constexpr int kPerThread = 300;
  StartBarrier barrier(kThreads);
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        view.execute([&] {
          vadd<stm::Word>(cell, 1);
          std::this_thread::yield();
        });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(cell), kThreads * static_cast<stm::Word>(kPerThread));
  EXPECT_LE(view.consecutive_abort_hwm(), vc.escalation.serial_after);
  EXPECT_EQ(view.admission().admitted(), 0u);
  EXPECT_EQ(view.admission().serial_holder(), -1);
  // health() mirrors the run's books.
  const WatchdogSample h = view.health();
  EXPECT_EQ(h.commits, view.stats().commits);
  EXPECT_EQ(h.aborts, view.stats().aborts);
  EXPECT_EQ(h.quota, 8u);
  EXPECT_EQ(h.admitted, 0u);
  EXPECT_EQ(h.serial_holder, -1);
}

TEST(ViewEscalation, WatchdogStaysQuietOnHealthyView) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 4);
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  LivelockWatchdog::Options opt;
  opt.period = std::chrono::milliseconds(5);
  opt.strikes = 2;
  LivelockWatchdog dog([&] { return view.health(); },
                       [](const WatchdogDiagnostic&) {}, opt);
  for (int i = 0; i < 2000; ++i) {
    view.execute([&] { vadd<stm::Word>(cell, 1); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  dog.stop();
  EXPECT_EQ(dog.alarms_raised(), 0u);
  EXPECT_EQ(vread(cell), 2000u);
}

// ---------------- transactional memory management -------------------------

TEST(ViewMemory, AllocInsideAbortedTransactionIsUndone) {
  View view(basic_config(stm::Algo::kNOrec));
  const std::size_t before = view.arena().allocated();
  struct Boom {};
  EXPECT_THROW(view.execute([&] {
    view.alloc(256);
    view.alloc(512);
    throw Boom{};
  }),
               Boom);
  EXPECT_EQ(view.arena().allocated(), before);
}

TEST(ViewMemory, FreeInsideTransactionIsDeferredToCommit) {
  View view(basic_config(stm::Algo::kNOrec));
  void* block = view.alloc(128);
  const std::size_t with_block = view.arena().allocated();
  struct Boom {};
  // Aborted transaction: the deferred free must NOT happen.
  EXPECT_THROW(view.execute([&] {
    view.free(block);
    throw Boom{};
  }),
               Boom);
  EXPECT_EQ(view.arena().allocated(), with_block);
  // Committed transaction: the block is retired to the limbo list, and a
  // forced reclaim pass (no concurrent pins) hands it back to the arena.
  view.execute([&] { view.free(block); });
  EXPECT_EQ(view.limbo_depth(), 1u);
  EXPECT_EQ(view.reclaim_garbage(), 1u);
  EXPECT_LT(view.arena().allocated(), with_block);
}

TEST(ViewMemory, AllocCommitPersists) {
  View view(basic_config(stm::Algo::kNOrec));
  stm::Word* cell = nullptr;
  view.execute([&] {
    cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
    vwrite<stm::Word>(cell, 31337);
  });
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(vread(cell), 31337u);
  EXPECT_TRUE(view.arena().owns(cell));
}

// ---------------- multi-view independence ---------------------------------

TEST(MultiView, IndependentViewsDoNotShareQuotaOrStats) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 4);
  View a(vc), b(vc);
  auto* ca = static_cast<stm::Word*>(a.alloc(sizeof(stm::Word)));
  auto* cb = static_cast<stm::Word*>(b.alloc(sizeof(stm::Word)));
  a.execute([&] { vwrite<stm::Word>(ca, 1); });
  a.execute([&] { vwrite<stm::Word>(ca, 2); });
  b.execute([&] { vwrite<stm::Word>(cb, 1); });
  EXPECT_EQ(a.stats().commits, 2u);
  EXPECT_EQ(b.stats().commits, 1u);
  a.set_quota(1);
  EXPECT_EQ(a.quota(), 1u);
  EXPECT_EQ(b.quota(), 4u);
}

TEST(MultiView, ThreadsAlternateBetweenViews) {
  ViewConfig vc = basic_config(stm::Algo::kOrecEagerRedo, 6);
  View a(vc), b(vc);
  auto* ca = static_cast<stm::Word*>(a.alloc(sizeof(stm::Word)));
  auto* cb = static_cast<stm::Word*>(b.alloc(sizeof(stm::Word)));
  constexpr unsigned kThreads = 6;
  constexpr int kRounds = 500;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kRounds; ++i) {
        a.execute([&] { vadd<stm::Word>(ca, 1); });
        b.execute([&] { vadd<stm::Word>(cb, 1); });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(ca), kThreads * static_cast<stm::Word>(kRounds));
  EXPECT_EQ(vread(cb), kThreads * static_cast<stm::Word>(kRounds));
}

TEST(MultiView, LockModeOnOneViewDoesNotBlockTheOther) {
  ViewConfig vc = basic_config(stm::Algo::kNOrec, 4);
  View hot(vc), cold(vc);
  hot.set_quota(1);
  auto* ch = static_cast<stm::Word*>(hot.alloc(sizeof(stm::Word)));
  auto* cc = static_cast<stm::Word*>(cold.alloc(sizeof(stm::Word)));
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        hot.execute([&] { vadd<stm::Word>(ch, 1); });
        cold.execute([&] { vadd<stm::Word>(cc, 1); });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(ch), 1600u);
  EXPECT_EQ(vread(cc), 1600u);
  EXPECT_EQ(hot.stats().aborts, 0u);  // exclusive lock mode
}

}  // namespace
}  // namespace votm::core
