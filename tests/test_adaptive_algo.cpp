// Tests of adaptive TM algorithm selection (paper Sec. IV-C extension):
// the AlgoSelector decision rule, the admission pause/resume quiesce
// protocol, and safe engine switching under live concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "core/access.hpp"
#include "core/algo_select.hpp"
#include "core/view.hpp"
#include "rac/admission.hpp"

namespace votm::core {
namespace {

// ---------------- AlgoSelector unit tests ---------------------------------

stm::StatsSnapshot epoch_of(std::uint64_t commits, std::uint64_t aborts) {
  stm::StatsSnapshot s;
  s.commits = commits;
  s.aborts = aborts;
  s.committed_cycles = commits * 1000;
  s.aborted_cycles = aborts * 1000;
  return s;
}

TEST(AlgoSelector, DisabledNeverSwitches) {
  AlgoSelector sel(AlgoAdaptConfig{});  // enabled = false
  EXPECT_EQ(sel.next_algo(stm::Algo::kOrecEagerRedo, epoch_of(1, 100000), 50.0),
            stm::Algo::kOrecEagerRedo);
}

TEST(AlgoSelector, StormMovesEagerToNOrec) {
  AlgoAdaptConfig cfg;
  cfg.enabled = true;
  AlgoSelector sel(cfg);
  EXPECT_EQ(sel.next_algo(stm::Algo::kOrecEagerRedo, epoch_of(10, 1000), 20.0),
            stm::Algo::kNOrec);
}

TEST(AlgoSelector, StormDetectionCoversAllAbortEpochs) {
  AlgoAdaptConfig cfg;
  cfg.enabled = true;
  AlgoSelector sel(cfg);
  // Livelock epoch: zero commits, plenty of aborts.
  EXPECT_EQ(sel.next_algo(stm::Algo::kOrecLazy, epoch_of(0, 5000),
                          std::numeric_limits<double>::infinity()),
            stm::Algo::kNOrec);
}

TEST(AlgoSelector, CalmNOrecMovesToEager) {
  AlgoAdaptConfig cfg;
  cfg.enabled = true;
  AlgoSelector sel(cfg);
  EXPECT_EQ(sel.next_algo(stm::Algo::kNOrec, epoch_of(10000, 10), 0.001),
            stm::Algo::kOrecEagerRedo);
}

TEST(AlgoSelector, ModerateContentionHolds) {
  AlgoAdaptConfig cfg;
  cfg.enabled = true;
  AlgoSelector sel(cfg);
  // Neither stormy nor calm: stay put (both directions).
  EXPECT_EQ(sel.next_algo(stm::Algo::kOrecEagerRedo, epoch_of(100, 200), 0.8),
            stm::Algo::kOrecEagerRedo);
  EXPECT_EQ(sel.next_algo(stm::Algo::kNOrec, epoch_of(100, 200), 0.8),
            stm::Algo::kNOrec);
}

TEST(AlgoSelector, CooldownPreventsFlapping) {
  AlgoAdaptConfig cfg;
  cfg.enabled = true;
  cfg.cooldown_epochs = 4;
  AlgoSelector sel(cfg);
  EXPECT_EQ(sel.next_algo(stm::Algo::kOrecEagerRedo, epoch_of(10, 1000), 20.0),
            stm::Algo::kNOrec);
  // Immediately calm on NOrec — would switch back, but the cooldown holds.
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sel.next_algo(stm::Algo::kNOrec, epoch_of(10000, 1), 0.0),
              stm::Algo::kNOrec)
        << "epoch " << i;
  }
  // Cooldown expired: now the calm rule may fire again.
  EXPECT_EQ(sel.next_algo(stm::Algo::kNOrec, epoch_of(10000, 1), 0.0),
            stm::Algo::kOrecEagerRedo);
}

TEST(AlgoSelector, EmptyEpochIsIgnored) {
  AlgoAdaptConfig cfg;
  cfg.enabled = true;
  AlgoSelector sel(cfg);
  EXPECT_EQ(sel.next_algo(stm::Algo::kNOrec, epoch_of(0, 0), 0.0),
            stm::Algo::kNOrec);
}

// ---------------- pause/resume quiesce protocol ----------------------------

TEST(AdmissionPause, PauseWaitsForDrainAndBlocksAdmission) {
  rac::AdmissionController ac(8, 8);
  ac.admit();

  std::atomic<bool> paused{false};
  std::thread pauser([&] {
    ac.pause();
    paused.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(paused.load());  // still one thread inside

  ac.leave();
  pauser.join();
  EXPECT_TRUE(paused.load());

  EXPECT_FALSE(ac.try_admit());  // paused: nobody gets in
  ac.resume();
  EXPECT_TRUE(ac.try_admit());
  ac.leave();
}

// ---------------- View::switch_algorithm -----------------------------------

ViewConfig adaptive_view(stm::Algo algo, unsigned threads = 8) {
  ViewConfig vc;
  vc.algo = algo;
  vc.max_threads = threads;
  vc.rac = RacMode::kAdaptive;
  vc.initial_bytes = 1 << 18;
  return vc;
}

TEST(SwitchAlgorithm, ChangesEngineAndName) {
  View view(adaptive_view(stm::Algo::kNOrec));
  EXPECT_EQ(view.algorithm(), stm::Algo::kNOrec);
  view.switch_algorithm(stm::Algo::kOrecEagerRedo);
  EXPECT_EQ(view.algorithm(), stm::Algo::kOrecEagerRedo);
  EXPECT_STREQ(view.engine().name(), "OrecEagerRedo");
  view.switch_algorithm(stm::Algo::kOrecEagerRedo);  // no-op
  EXPECT_EQ(view.algorithm(), stm::Algo::kOrecEagerRedo);
}

TEST(SwitchAlgorithm, RejectedWithoutAdmissionControl) {
  ViewConfig vc = adaptive_view(stm::Algo::kNOrec);
  vc.rac = RacMode::kDisabled;
  View view(vc);
  EXPECT_THROW(view.switch_algorithm(stm::Algo::kTml), std::logic_error);
}

TEST(SwitchAlgorithm, CounterStaysExactAcrossLiveSwitches) {
  View view(adaptive_view(stm::Algo::kNOrec));
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));
  view.execute([&] { vwrite<stm::Word>(cell, 0); });

  constexpr unsigned kThreads = 6;
  constexpr int kPerThread = 800;
  std::atomic<bool> done{false};

  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        view.execute([&] { vadd<stm::Word>(cell, 1); });
      }
    });
  }
  // Switch back and forth while the workers hammer the counter.
  std::thread switcher([&] {
    const stm::Algo cycle[] = {stm::Algo::kOrecEagerRedo, stm::Algo::kOrecLazy,
                               stm::Algo::kTml, stm::Algo::kNOrec};
    std::size_t i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      view.switch_algorithm(cycle[i++ % 4]);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& th : pool) th.join();
  done.store(true);
  switcher.join();

  EXPECT_EQ(vread(cell), kThreads * static_cast<stm::Word>(kPerThread));
}

TEST(SwitchAlgorithm, AdaptiveStormTriggersNOrecFallback) {
  // A hot OrecEagerRedo view with yields holding encounter-time locks: the
  // selector should observe the abort storm and move the view to NOrec.
  ViewConfig vc = adaptive_view(stm::Algo::kOrecEagerRedo);
  vc.adapt_interval = 256;
  vc.algo_adapt.enabled = true;
  vc.algo_adapt.storm_abort_ratio = 4.0;
  // Keep the quota up so the storm is visible to the algorithm selector
  // (otherwise RAC fixes the problem first by dropping Q — which is the
  // right default, but not what this test exercises).
  vc.policy.halve_threshold = 1e18;
  View view(vc);
  auto* cell = static_cast<stm::Word*>(view.alloc(sizeof(stm::Word)));

  constexpr unsigned kThreads = 8;
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 60; ++i) {
        view.execute([&] {
          vadd<stm::Word>(cell, 1);
          std::this_thread::yield();  // hold the orec across a reschedule
        });
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(cell), kThreads * 60u);
  EXPECT_EQ(view.algorithm(), stm::Algo::kNOrec)
      << "storm should have moved the view off encounter-time locking";
}

}  // namespace
}  // namespace votm::core
