// Tests of the analytic model (paper Sec. II-A): the makespan equations,
// Observations 1 and 2, the multi-view decomposition identity, and
// agreement between the discrete-event simulator and the closed forms.
#include <gtest/gtest.h>

#include <cmath>

#include "model/makespan.hpp"
#include "model/simulator.hpp"
#include "util/rng.hpp"

namespace votm::model {
namespace {

Workload uniform_workload(std::size_t n, double t, double c, double d) {
  return Workload(n, Transaction{t, c, d});
}

// Random workload generator for property sweeps.
Workload random_workload(std::uint64_t seed, std::size_t n, double contention) {
  Xoshiro256 rng(seed);
  Workload w;
  w.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Transaction tx;
    tx.t = 1.0 + rng.uniform01() * 9.0;
    tx.c = contention * rng.uniform01() * 20.0;
    tx.d = 0.5 + rng.uniform01() * 2.0;
    w.push_back(tx);
  }
  return w;
}

TEST(Makespan, EquationOne) {
  // 4 transactions, t=2, c=3, d=1 -> sum(cd + t) = 4*(3+2) = 20; N=4 -> 5.
  const Workload w = uniform_workload(4, 2.0, 3.0, 1.0);
  EXPECT_DOUBLE_EQ(makespan_tm(w, 4), 5.0);
}

TEST(Makespan, EquationTwoReducesToEquationOneAtFullQuota) {
  const Workload w = random_workload(1, 50, 1.0);
  for (unsigned n : {2u, 4u, 8u, 16u}) {
    EXPECT_NEAR(makespan_rac(w, n, n), makespan_tm(w, n), 1e-12);
  }
}

TEST(Makespan, QuotaOneRemovesAllAbortCost) {
  const Workload w = uniform_workload(10, 2.0, 5.0, 3.0);
  // Q=1: (0 * sum_cd + sum_t) / 1 = sum_t.
  EXPECT_DOUBLE_EQ(makespan_rac(w, 16, 1), 20.0);
}

TEST(Makespan, DifferenceSignMatchesDeltaRule) {
  // Paper: delta > 1 => Delta < 0 (RAC wins); delta <= 1 => Delta >= 0.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const double contention = (seed % 5) * 0.5;  // 0 .. 2.0
    const Workload w = random_workload(seed, 40, contention);
    const unsigned n = 16;
    const double delta = contention_delta(w, n);
    for (unsigned q = 1; q < n; ++q) {
      const double diff = makespan_difference(w, n, q);
      if (delta > 1.0) {
        EXPECT_LT(diff, 1e-9) << "seed " << seed << " q " << q;
      } else {
        EXPECT_GT(diff, -1e-9) << "seed " << seed << " q " << q;
      }
    }
  }
}

TEST(Makespan, EquationThreeClosedForm) {
  // Delta = 1/(N-1) (1/N - 1/Q) (sum cd - sum t (N-1))
  const Workload w = random_workload(7, 30, 1.5);
  const unsigned n = 16;
  const Aggregates a = aggregate(w);
  for (unsigned q = 1; q <= n; ++q) {
    const double expected = 1.0 / (n - 1) * (1.0 / n - 1.0 / q) *
                            (a.sum_cd - a.sum_t * (n - 1));
    EXPECT_NEAR(makespan_difference(w, n, q), expected, 1e-9);
  }
}

TEST(Makespan, OptimalQuotaIsOneUnderExtremeContention) {
  const Workload w = uniform_workload(20, 1.0, 100.0, 5.0);
  EXPECT_EQ(optimal_quota(w, 16), 1u);
}

TEST(Makespan, OptimalQuotaIsNWithoutContention) {
  const Workload w = uniform_workload(20, 1.0, 0.0, 0.0);
  EXPECT_EQ(optimal_quota(w, 16), 16u);
}

TEST(Makespan, OptimalQuotaMonotoneInContention) {
  // As per-transaction abort cost rises, the optimal quota must not rise.
  unsigned prev = 16;
  for (double cd = 0.0; cd <= 40.0; cd += 2.0) {
    const Workload w = uniform_workload(30, 1.0, cd, 1.0);
    const unsigned q = optimal_quota(w, 16);
    EXPECT_LE(q, prev) << "cd " << cd;
    prev = q;
  }
  EXPECT_EQ(prev, 1u);
}

// ---- Observation 2: multi-view decomposition ------------------------------

TEST(MultiViewModel, SingleViewMakespanDecomposes) {
  // Eq. 7: makespan_RAC(S, Q) = makespan_RAC(S1, Q) + makespan_RAC(S2, Q).
  const Workload w1 = random_workload(11, 25, 2.0);
  const Workload w2 = random_workload(12, 25, 0.2);
  Workload joint = w1;
  joint.insert(joint.end(), w2.begin(), w2.end());
  for (unsigned q = 1; q <= 16; ++q) {
    EXPECT_NEAR(makespan_rac(joint, 16, q),
                makespan_rac(w1, 16, q) + makespan_rac(w2, 16, q), 1e-9);
  }
}

TEST(MultiViewModel, ObservationTwoHolds) {
  // One high-contention object (delta1 > 1), one low (delta2 <= 1): putting
  // them in separate views with per-view optimal quotas is never worse than
  // any single-view quota, over randomized workloads.
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Workload hot = random_workload(seed * 2 + 1, 30, 2.5);
    const Workload cold = random_workload(seed * 2 + 2, 30, 0.05);
    Workload joint = hot;
    joint.insert(joint.end(), cold.begin(), cold.end());

    const unsigned n = 16;
    const unsigned q1 = optimal_quota(hot, n);
    const unsigned q2 = optimal_quota(cold, n);
    const double multi =
        makespan_multi_view({{hot, q1}, {cold, q2}}, n);
    for (unsigned q = 1; q <= n; ++q) {
      EXPECT_LE(multi, makespan_rac(joint, n, q) + 1e-9)
          << "seed " << seed << " q " << q;
    }
  }
}

TEST(MultiViewModel, PaperInequalityPreconditions) {
  // The proof needs Q1 <= Q <= Q2 with delta1 > 1 and delta2 <= 1; verify
  // the two makespan monotonicity lemmas (Eqs. 8 and 9) directly.
  const Workload hot = uniform_workload(20, 1.0, 60.0, 2.0);   // delta >> 1
  const Workload cold = uniform_workload(20, 1.0, 0.5, 0.1);   // delta << 1
  const unsigned n = 16;
  EXPECT_GT(contention_delta(hot, n), 1.0);
  EXPECT_LE(contention_delta(cold, n), 1.0);
  for (unsigned q = 2; q <= n; ++q) {
    // Eq. 8: lowering quota helps the hot view.
    EXPECT_LE(makespan_rac(hot, n, q - 1), makespan_rac(hot, n, q) + 1e-9);
    // Eq. 9: raising quota helps the cold view.
    EXPECT_LE(makespan_rac(cold, n, q), makespan_rac(cold, n, q - 1) + 1e-9);
  }
}

// ---- Simulator vs closed form ---------------------------------------------

TEST(Simulator, ConvergesToClosedFormAtFullQuota) {
  const Workload w = uniform_workload(40000, 1.0, 4.0, 0.5);
  const SimResult r = simulate_tm(w, 16, 42);
  EXPECT_NEAR(r.makespan, makespan_tm(w, 16), makespan_tm(w, 16) * 0.02);
}

TEST(Simulator, ConvergesToClosedFormAcrossQuotas) {
  const Workload w = uniform_workload(40000, 1.0, 6.0, 1.0);
  for (unsigned q : {1u, 2u, 4u, 8u, 16u}) {
    SimConfig cfg;
    cfg.n_threads = 16;
    cfg.quota = q;
    cfg.seed = 7;
    const SimResult r = simulate_rac(w, cfg);
    const double expected = makespan_rac(w, 16, q);
    EXPECT_NEAR(r.makespan, expected, expected * 0.03) << "q " << q;
  }
}

TEST(Simulator, QuotaOneHasNoAborts) {
  const Workload w = uniform_workload(1000, 1.0, 10.0, 1.0);
  SimConfig cfg;
  cfg.quota = 1;
  const SimResult r = simulate_rac(w, cfg);
  EXPECT_EQ(r.total_aborts, 0u);
  EXPECT_DOUBLE_EQ(r.aborted_time, 0.0);
}

TEST(Simulator, AbortCountScalesWithQuota) {
  const Workload w = uniform_workload(20000, 1.0, 8.0, 1.0);
  std::uint64_t prev = 0;
  for (unsigned q : {2u, 4u, 8u, 16u}) {
    SimConfig cfg;
    cfg.quota = q;
    cfg.seed = 3;
    const SimResult r = simulate_rac(w, cfg);
    EXPECT_GT(r.total_aborts, prev) << "q " << q;
    prev = r.total_aborts;
    // E[aborts] = n * c * (Q-1)/(N-1).
    const double expected = 20000.0 * 8.0 * (q - 1) / 15.0;
    EXPECT_NEAR(static_cast<double>(r.total_aborts), expected, expected * 0.05);
  }
}

TEST(Simulator, DeltaEstimatorMatchesAnalyticDelta) {
  // At full quota the simulated Eq. 5 estimate should approximate the
  // analytic delta = sum(cd)/(sum(t)(N-1)).
  const Workload w = uniform_workload(30000, 1.0, 6.0, 2.0);
  const SimResult r = simulate_tm(w, 16, 5);
  const double analytic = contention_delta(w, 16);
  EXPECT_NEAR(simulated_delta(r, 16), analytic, analytic * 0.05);
}

TEST(Simulator, DeterministicGivenSeed) {
  const Workload w = uniform_workload(1000, 1.0, 5.0, 1.0);
  SimConfig cfg;
  cfg.quota = 8;
  cfg.seed = 99;
  const SimResult a = simulate_rac(w, cfg);
  const SimResult b = simulate_rac(w, cfg);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.total_aborts, b.total_aborts);
}

TEST(Simulator, RejectsInvalidConfig) {
  const Workload w = uniform_workload(10, 1.0, 1.0, 1.0);
  SimConfig cfg;
  cfg.quota = 0;
  EXPECT_THROW(simulate_rac(w, cfg), std::invalid_argument);
  cfg.quota = 17;
  EXPECT_THROW(simulate_rac(w, cfg), std::invalid_argument);
}

// ---- Parameterized sweep: simulator tracks Observation 1 ------------------

class ObservationOne : public ::testing::TestWithParam<unsigned> {};

TEST_P(ObservationOne, AdjustingTowardDeltaReducesSimulatedMakespan) {
  const unsigned q = GetParam();
  const Workload w = uniform_workload(20000, 1.0, 10.0, 2.0);  // delta > 1
  SimConfig cfg;
  cfg.quota = q;
  cfg.seed = q;
  const SimResult at_q = simulate_rac(w, cfg);
  if (q > 1) {
    SimConfig lower = cfg;
    lower.quota = q / 2;
    EXPECT_LT(simulate_rac(w, lower).makespan, at_q.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(Quotas, ObservationOne,
                         ::testing::Values(2u, 4u, 8u, 16u));

}  // namespace
}  // namespace votm::model
