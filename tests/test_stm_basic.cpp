// Single-threaded behavioural tests of each STM engine: commit visibility,
// read-after-write, rollback on abort, read-only commits, write-set
// semantics, orec packing, log structures.
#include <gtest/gtest.h>

#include <memory>

#include "stm/access.hpp"
#include "stm/cgl.hpp"
#include "stm/factory.hpp"
#include "stm/logs.hpp"
#include "stm/norec.hpp"
#include "stm/orec_eager_redo.hpp"
#include "stm/orec_table.hpp"
#include "stm/tml.hpp"

namespace votm::stm {
namespace {

class StmBasic : public ::testing::TestWithParam<Algo> {
 protected:
  void SetUp() override { engine_ = make_engine(GetParam()); }
  std::unique_ptr<TxEngine> engine_;
  TxThread tx_;
};

TEST_P(StmBasic, CommitPublishesWrites) {
  Word data[4] = {0, 0, 0, 0};
  atomically(*engine_, tx_, [&](TxThread& tx) {
    engine_->write(tx, &data[0], 11);
    engine_->write(tx, &data[2], 22);
  });
  EXPECT_EQ(data[0], 11u);
  EXPECT_EQ(data[1], 0u);
  EXPECT_EQ(data[2], 22u);
}

TEST_P(StmBasic, ReadSeesPriorCommit) {
  Word cell = 123;
  Word seen = 0;
  atomically(*engine_, tx_, [&](TxThread& tx) { seen = engine_->read(tx, &cell); });
  EXPECT_EQ(seen, 123u);
}

TEST_P(StmBasic, ReadAfterWriteReturnsBufferedValue) {
  Word cell = 1;
  Word seen = 0;
  atomically(*engine_, tx_, [&](TxThread& tx) {
    engine_->write(tx, &cell, 77);
    seen = engine_->read(tx, &cell);
  });
  EXPECT_EQ(seen, 77u);
  EXPECT_EQ(cell, 77u);
}

TEST_P(StmBasic, OverwriteKeepsLastValue) {
  Word cell = 0;
  atomically(*engine_, tx_, [&](TxThread& tx) {
    for (Word v = 1; v <= 10; ++v) engine_->write(tx, &cell, v);
  });
  EXPECT_EQ(cell, 10u);
}

TEST_P(StmBasic, UserExceptionRollsBack) {
  if (!engine_->speculative()) GTEST_SKIP() << "CGL writes in place";
  if (GetParam() == Algo::kTml) GTEST_SKIP() << "TML writers are irrevocable";
  Word cell = 5;
  struct Boom {};
  EXPECT_THROW(atomically(*engine_, tx_,
                          [&](TxThread& tx) {
                            engine_->write(tx, &cell, 99);
                            throw Boom{};
                          }),
               Boom);
  EXPECT_EQ(cell, 5u);  // speculative write never published
  EXPECT_FALSE(tx_.in_tx);
}

TEST_P(StmBasic, ReadOnlyTransactionCommits) {
  Word cell = 42;
  tx_.read_only = true;
  Word seen = 0;
  atomically(*engine_, tx_, [&](TxThread& tx) { seen = engine_->read(tx, &cell); });
  tx_.read_only = false;
  EXPECT_EQ(seen, 42u);
}

TEST_P(StmBasic, WriteInReadOnlyTransactionIsMisuse) {
  Word cell = 1;
  tx_.read_only = true;
  EXPECT_THROW(atomically(*engine_, tx_,
                          [&](TxThread& tx) { engine_->write(tx, &cell, 2); }),
               std::logic_error);
  tx_.read_only = false;
  EXPECT_EQ(cell, 1u);
  EXPECT_FALSE(tx_.in_tx);
}

TEST_P(StmBasic, SequentialTransactionsAccumulate) {
  Word counter = 0;
  for (int i = 0; i < 100; ++i) {
    atomically(*engine_, tx_, [&](TxThread& tx) {
      engine_->write(tx, &counter, engine_->read(tx, &counter) + 1);
    });
  }
  EXPECT_EQ(counter, 100u);
}

TEST_P(StmBasic, ManyDistinctWritesInOneTransaction) {
  constexpr int kWords = 500;  // exceeds the write-set growth threshold
  std::vector<Word> data(kWords, 0);
  atomically(*engine_, tx_, [&](TxThread& tx) {
    for (int i = 0; i < kWords; ++i) {
      engine_->write(tx, &data[i], static_cast<Word>(i + 1));
    }
  });
  for (int i = 0; i < kWords; ++i) EXPECT_EQ(data[i], static_cast<Word>(i + 1));
}

TEST_P(StmBasic, StatsAccumulateCommits) {
  StripedEpochStats stats;
  tx_.stats = &stats;
  Word cell = 0;
  for (int i = 0; i < 5; ++i) {
    atomically(*engine_, tx_, [&](TxThread& tx) { engine_->write(tx, &cell, 1); });
  }
  tx_.stats = nullptr;
  const StatsSnapshot total = stats.fold();
  EXPECT_EQ(total.commits, 5u);
  EXPECT_EQ(total.aborts, 0u);
  EXPECT_GT(total.committed_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, StmBasic,
                         ::testing::Values(Algo::kNOrec, Algo::kOrecEagerRedo,
                                           Algo::kOrecLazy,
                                           Algo::kOrecEagerUndo, Algo::kTml,
                                           Algo::kCgl),
                         [](const auto& info) { return to_string(info.param); });

TEST(WriteSetTest, InsertLookupOverwrite) {
  WriteSet ws;
  Word a = 0, b = 0;
  EXPECT_TRUE(ws.empty());
  EXPECT_EQ(ws.lookup(&a), nullptr);
  ws.insert(&a, 1);
  ws.insert(&b, 2);
  ws.insert(&a, 3);
  ASSERT_NE(ws.lookup(&a), nullptr);
  EXPECT_EQ(*ws.lookup(&a), 3u);
  EXPECT_EQ(*ws.lookup(&b), 2u);
  EXPECT_EQ(ws.size(), 2u);
}

TEST(WriteSetTest, ClearKeepsCapacityAndEmpties) {
  WriteSet ws;
  std::vector<Word> cells(100);
  for (auto& c : cells) ws.insert(&c, 1);
  ws.clear();
  EXPECT_TRUE(ws.empty());
  for (auto& c : cells) EXPECT_EQ(ws.lookup(&c), nullptr);
}

TEST(WriteSetTest, GrowthPreservesEntries) {
  WriteSet ws;
  std::vector<Word> cells(1000);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ws.insert(&cells[i], static_cast<Word>(i));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    ASSERT_NE(ws.lookup(&cells[i]), nullptr);
    EXPECT_EQ(*ws.lookup(&cells[i]), static_cast<Word>(i));
  }
  // Insertion order is preserved for write-back.
  const auto& entries = ws.entries();
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].addr, &cells[i]);
  }
}

TEST(ValueReadLogTest, DetectsChangedValue) {
  ValueReadLog log;
  Word cell = 7;
  log.push(&cell, 7);
  EXPECT_TRUE(log.values_match());
  cell = 8;
  EXPECT_FALSE(log.values_match());
}

TEST(OrecTest, PackUnpackRoundTrip) {
  EXPECT_FALSE(Orec::is_locked(Orec::pack_version(41)));
  EXPECT_EQ(Orec::version_of(Orec::pack_version(41)), 41u);
  TxThread tx;
  const auto locked = Orec::pack_owner(&tx);
  EXPECT_TRUE(Orec::is_locked(locked));
  EXPECT_EQ(Orec::owner_of(locked), &tx);
}

TEST(OrecTableTest, SameAddressSameOrec) {
  OrecTable table(1024);
  Word cell = 0;
  EXPECT_EQ(&table.for_address(&cell), &table.for_address(&cell));
}

TEST(OrecTableTest, RejectsNonPowerOfTwo) {
  EXPECT_THROW(OrecTable(1000), std::invalid_argument);
  EXPECT_THROW(OrecTable(0), std::invalid_argument);
}

TEST(OrecTableTest, SpreadsAddresses) {
  OrecTable table(4096);
  std::vector<Word> cells(2048);
  std::set<const Orec*> used;
  for (const auto& c : cells) used.insert(&table.for_address(&c));
  // With 4096 orecs and 2048 distinct words, expect broad (not perfect)
  // dispersion; a constant hash would collapse to 1.
  EXPECT_GT(used.size(), 1000u);
}

TEST(FactoryTest, NamesRoundTrip) {
  for (Algo algo : {Algo::kNOrec, Algo::kOrecEagerRedo, Algo::kOrecLazy,
                    Algo::kTml, Algo::kCgl}) {
    EXPECT_EQ(algo_from_string(to_string(algo)), algo);
  }
  EXPECT_EQ(algo_from_string("oer"), Algo::kOrecEagerRedo);
  EXPECT_EQ(algo_from_string("lazy"), Algo::kOrecLazy);
  EXPECT_EQ(algo_from_string("lock"), Algo::kCgl);
  EXPECT_THROW(algo_from_string("bogus"), std::invalid_argument);
}

TEST(OrecLazyTest, AliasedWritesCommitThroughOneOrec) {
  // Two addresses hashing to the same orec must not deadlock the lazy
  // commit-time acquisition (second acquisition sees "locked by me").
  EngineConfig config;
  config.orec_table_size = 1;  // every address aliases the single orec
  auto engine = make_engine(Algo::kOrecLazy, config);
  TxThread tx;
  Word a = 0, b = 0;
  atomically(*engine, tx, [&](TxThread& t) {
    engine->write(t, &a, 1);
    engine->write(t, &b, 2);
  });
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
}

TEST(OrecEagerTest, AliasedWritesLockOnce) {
  EngineConfig config;
  config.orec_table_size = 1;
  auto engine = make_engine(Algo::kOrecEagerRedo, config);
  TxThread tx;
  Word a = 0, b = 0;
  atomically(*engine, tx, [&](TxThread& t) {
    engine->write(t, &a, 1);
    engine->write(t, &b, 2);   // same orec, already owned
    EXPECT_EQ(engine->read(t, &a), 1u);
    EXPECT_EQ(engine->read(t, &b), 2u);
  });
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
}

TEST(FactoryTest, EngineNamesMatch) {
  EXPECT_STREQ(make_engine(Algo::kNOrec)->name(), "NOrec");
  EXPECT_STREQ(make_engine(Algo::kOrecEagerRedo)->name(), "OrecEagerRedo");
  EXPECT_STREQ(make_engine(Algo::kTml)->name(), "TML");
  EXPECT_STREQ(make_engine(Algo::kCgl)->name(), "CGL");
  EXPECT_FALSE(make_engine(Algo::kCgl)->speculative());
  EXPECT_TRUE(make_engine(Algo::kNOrec)->speculative());
}

}  // namespace
}  // namespace votm::stm
