// Tests of the paper's Table I C-style API: create/destroy views,
// malloc_block/free_block/brk_view, acquire/release with longjmp-based
// retry, acquire_Rview, and the paper's Figs. 1-2 linked-list example.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/votm.hpp"

namespace {


using votm::core::vread;
using votm::core::vwrite;
using Word = votm::stm::Word;

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    votm::RuntimeConfig rc;
    rc.max_threads = 8;
    rc.algo = votm::stm::Algo::kNOrec;
    votm::votm_init(rc);
  }
  void TearDown() override { votm::votm_shutdown(); }
};

TEST_F(CapiTest, CreateAllocDestroy) {
  votm::create_view(1, 1 << 16, 0);
  void* block = votm::malloc_block(1, 128);
  ASSERT_NE(block, nullptr);
  votm::free_block(1, block);
  votm::destroy_view(1);
  EXPECT_THROW(votm::malloc_block(1, 8), std::out_of_range);
}

TEST_F(CapiTest, DuplicateVidRejected) {
  votm::create_view(1, 4096, 0);
  EXPECT_THROW(votm::create_view(1, 4096, 0), std::invalid_argument);
  votm::destroy_view(1);
}

TEST_F(CapiTest, BrkViewExtends) {
  votm::create_view(2, 4096, 0);
  EXPECT_THROW(votm::malloc_block(2, 1 << 16), std::bad_alloc);
  votm::brk_view(2, 1 << 17);
  EXPECT_NO_THROW(votm::malloc_block(2, 1 << 16));
  votm::destroy_view(2);
}

TEST_F(CapiTest, AcquireReleaseCommits) {
  votm::create_view(3, 4096, 0);
  auto* cell = static_cast<Word*>(votm::malloc_block(3, sizeof(Word)));
  acquire_view(3);
  vwrite<Word>(cell, 99);
  release_view(3);
  EXPECT_EQ(vread(cell), 99u);
  votm::destroy_view(3);
}

TEST_F(CapiTest, AcquireRviewReadsOnly) {
  votm::create_view(4, 4096, 0);
  auto* cell = static_cast<Word*>(votm::malloc_block(4, sizeof(Word)));
  acquire_view(4);
  vwrite<Word>(cell, 5);
  release_view(4);

  Word seen = 0;
  acquire_Rview(4);
  seen = vread(cell);
  release_view(4);
  EXPECT_EQ(seen, 5u);

  // Writing under a read-only acquire is API misuse.
  acquire_Rview(4);
  EXPECT_THROW(vwrite<Word>(cell, 6), std::logic_error);
  EXPECT_EQ(vread(cell), 5u);
  votm::destroy_view(4);
}

TEST_F(CapiTest, ReleaseWithoutAcquireRejected) {
  votm::create_view(5, 4096, 0);
  EXPECT_THROW(release_view(5), std::logic_error);
  votm::destroy_view(5);
}

TEST_F(CapiTest, StaticQuotaHonoured) {
  votm::create_view(6, 4096, 1);  // Q statically pinned to 1: lock mode
  auto* cell = static_cast<Word*>(votm::malloc_block(6, sizeof(Word)));
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        acquire_view(6);
        vwrite<Word>(cell, vread(cell) + 1);
        release_view(6);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(cell), 2000u);
  EXPECT_EQ(votm::view_of(6).stats().aborts, 0u);
  EXPECT_EQ(votm::view_of(6).quota(), 1u);
  votm::destroy_view(6);
}

TEST_F(CapiTest, LongjmpRetryUnderContention) {
  // Heavy RMW contention forces real aborts; the longjmp retry path must
  // preserve exactness.
  votm::create_view(7, 4096, 8);
  auto* cell = static_cast<Word*>(votm::malloc_block(7, sizeof(Word)));
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        acquire_view(7);
        vwrite<Word>(cell, vread(cell) + 1);
        release_view(7);
      }
    });
  }
  for (auto& th : pool) th.join();
  EXPECT_EQ(vread(cell), static_cast<Word>(kThreads) * kPerThread);
  votm::destroy_view(7);
}

TEST_F(CapiTest, NestedAcquireRejected) {
  votm::create_view(8, 4096, 0);
  votm::create_view(9, 4096, 0);
  acquire_view(8);
  // (manual try/catch: EXPECT_THROW's internal flag would trip the
  // -Wclobbered setjmp diagnostic inside the acquire macro)
  static bool threw;
  threw = false;
  try {
    acquire_view(9);
  } catch (const std::logic_error&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
  release_view(8);
  votm::destroy_view(8);
  votm::destroy_view(9);
}

TEST_F(CapiTest, InitWhileViewsExistRejected) {
  votm::create_view(10, 4096, 0);
  EXPECT_THROW(votm::votm_init({}), std::logic_error);
  votm::destroy_view(10);
}

// ---- The paper's Figures 1-2: a sorted linked list in a view -------------

struct Node {
  Node* next;
  long val;
};

struct List {
  Node* head;
};

List* ll_init(votm::vid_type vid) {
  votm::create_view(vid, 1 << 20, 0);
  auto* result = static_cast<List*>(votm::malloc_block(vid, sizeof(List)));
  acquire_view(vid);
  vwrite<Node*>(&result->head, nullptr);
  release_view(vid);
  return result;
}

void ll_insert(List* list, Node* node, votm::vid_type vid) {
  acquire_view(vid);
  Node* head = vread(&list->head);
  const long node_val = vread(&node->val);
  if (head == nullptr || vread(&head->val) >= node_val) {
    vwrite(&node->next, head);
    vwrite(&list->head, node);
  } else {
    Node* curr = head;
    Node* next = nullptr;
    while (nullptr != (next = vread(&curr->next)) && vread(&next->val) < node_val) {
      curr = next;
    }
    vwrite(&node->next, next);
    vwrite(&curr->next, node);
  }
  release_view(vid);
}

// Traversal lives in its own frame: locals of a function called between
// acquire and release are created after the setjmp, so an abort-longjmp
// retry re-runs it from scratch (the setjmp "clobbered locals" caveat).
int ll_count_sorted(List* list, bool* sorted) {
  int count = 0;
  long prev = -1;
  *sorted = true;
  for (Node* n = vread(&list->head); n != nullptr; n = vread(&n->next)) {
    const long v = vread(&n->val);
    *sorted = *sorted && v >= prev;
    prev = v;
    ++count;
  }
  return count;
}

TEST_F(CapiTest, PaperLinkedListStaysSortedUnderConcurrency) {
  constexpr votm::vid_type kVid = 20;
  List* list = ll_init(kVid);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 150;

  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto* node = static_cast<Node*>(votm::malloc_block(kVid, sizeof(Node)));
        node->val = (i * 7919 + t * 104729) % 1000;  // pre-tx init is fine
        node->next = nullptr;
        ll_insert(list, node, kVid);
      }
    });
  }
  for (auto& th : pool) th.join();

  // Verify: sorted, and exactly kThreads * kPerThread nodes.
  static int count;       // statics survive longjmp retries unambiguously
  static bool sorted;
  acquire_Rview(kVid);
  count = ll_count_sorted(list, &sorted);
  release_view(kVid);
  EXPECT_TRUE(sorted);
  EXPECT_EQ(count, kThreads * kPerThread);
  votm::destroy_view(kVid);
}

}  // namespace
