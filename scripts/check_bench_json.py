#!/usr/bin/env python3
"""Schema check for the checked-in bench baselines (BENCH_*.json).

The baselines are written by hand-rolled JSON emitters in bench/*.cpp, so a
formatting bug (or a half-finished re-baseline) would otherwise sit unnoticed
until someone tries to plot a trajectory. Run as a ctest step (label
`bench-json`), this validates every BENCH_*.json at the repo root:

  * parses as JSON, with a "bench" name and a non-empty "results" list;
  * every results entry carries an integer "threads" >= 1;
  * at least one top-level ratio section (a key containing "speedup",
    "ratio" or "_vs_") holds a non-empty list, so each baseline keeps
    publishing the A/B comparison it exists for;
  * every baseline in REQUIRED_BASELINES exists — a deleted or never-
    regenerated file fails the gate instead of silently shrinking the
    trajectory.

Usage: check_bench_json.py [repo_root]
Exits non-zero with one line per problem.
"""

import glob
import json
import os
import sys

# Baselines every checkout must carry. Add the file here in the same PR
# that introduces its bench binary.
REQUIRED_BASELINES = [
    "BENCH_admission.json",
    "BENCH_clock.json",
    "BENCH_cm.json",
    "BENCH_escalation.json",
    "BENCH_granularity.json",
    "BENCH_mvcc.json",
    "BENCH_reclaim.json",
    "BENCH_robustness.json",
    "BENCH_validation.json",
]


def check_file(path):
    problems = []
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        return ["{}: unreadable or invalid JSON ({})".format(path, err)]

    if not isinstance(doc, dict):
        return ["{}: top level is not an object".format(path)]
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        problems.append("{}: missing \"bench\" name".format(path))

    results = doc.get("results")
    if not isinstance(results, list) or not results:
        problems.append("{}: \"results\" missing or empty".format(path))
        results = []
    for i, row in enumerate(results):
        if not isinstance(row, dict):
            problems.append("{}: results[{}] is not an object".format(path, i))
            continue
        threads = row.get("threads")
        if not isinstance(threads, int) or isinstance(threads, bool) \
                or threads < 1:
            problems.append(
                "{}: results[{}] has no integer \"threads\" >= 1 "
                "(got {!r})".format(path, i, threads))

    ratio_keys = [
        k for k in doc
        if "speedup" in k or "ratio" in k or "_vs_" in k
    ]
    if not any(isinstance(doc[k], list) and doc[k] for k in ratio_keys):
        problems.append(
            "{}: no non-empty ratio section (key containing \"speedup\", "
            "\"ratio\" or \"_vs_\")".format(path))
    return problems


def main(argv):
    root = argv[1] if len(argv) > 1 else os.getcwd()
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print("check_bench_json: no BENCH_*.json under {}".format(root))
        return 1
    problems = []
    present = {os.path.basename(p) for p in paths}
    for name in REQUIRED_BASELINES:
        if name not in present:
            problems.append("{}: required baseline missing".format(
                os.path.join(root, name)))
    for path in paths:
        problems.extend(check_file(path))
    for p in problems:
        print(p)
    print("check_bench_json: {} file(s), {} problem(s)".format(
        len(paths), len(problems)))
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
